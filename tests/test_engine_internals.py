"""Focused tests for engine internals: query assignment, source sampling,
breakdown mapping, latency reporting, and cluster bring-up."""

import numpy as np
import pytest

from repro import EngineConfig, GraphEngine, RunRequest
from repro.engine.breakdown import PHASES, aggregate_breakdowns, phase_seconds
from repro.engine.cluster import SimCluster
from repro.engine.query import assign_queries, sample_sources
from repro.errors import SimulationError
from repro.graph import CSRGraph, powerlaw_cluster
from repro.partition import HashPartitioner, PartitionResult
from repro.storage import build_shards
from repro.utils.timer import TimeBreakdown


@pytest.fixture(scope="module")
def sharded():
    g = powerlaw_cluster(300, 6, mixing=0.2, seed=0)
    return build_shards(g, HashPartitioner().partition(g, 3))


class TestSampleSources:
    def test_even_spread_across_shards(self, sharded):
        sources = sample_sources(sharded, 9, seed=1)
        owners = sharded.owner_shard[sources]
        np.testing.assert_array_equal(np.bincount(owners, minlength=3),
                                      [3, 3, 3])

    def test_remainder_round_robin(self, sharded):
        sources = sample_sources(sharded, 7, seed=2)
        counts = np.bincount(sharded.owner_shard[sources], minlength=3)
        assert counts.sum() == 7
        assert counts.max() - counts.min() <= 1

    def test_prefers_connected_nodes(self, sharded):
        sources = sample_sources(sharded, 12, seed=3)
        degrees = np.diff(sharded.graph.indptr)
        assert np.all(degrees[sources] > 0)

    def test_invalid_count(self, sharded):
        with pytest.raises(ValueError):
            sample_sources(sharded, 0)

    def test_reproducible(self, sharded):
        a = sample_sources(sharded, 6, seed=5)
        b = sample_sources(sharded, 6, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_isolated_only_shard_still_works(self):
        # shard 1 holds only isolated nodes
        g = CSRGraph.from_edges(4, [0], [1])
        res = PartitionResult(np.array([0, 0, 1, 1]), 2)
        sharded = build_shards(g, res)
        sources = sample_sources(sharded, 2, seed=0)
        assert len(sources) == 2


class TestAssignQueries:
    def test_owner_compute_respected(self, sharded):
        sources = sample_sources(sharded, 12, seed=6)
        assignment = assign_queries(sharded, sources, 2)
        for (machine, _proc), chunk in assignment.items():
            np.testing.assert_array_equal(
                sharded.owner_shard[chunk], machine
            )

    def test_round_robin_within_machine(self, sharded):
        sources = sample_sources(sharded, 12, seed=7)
        assignment = assign_queries(sharded, sources, 2)
        for m in range(3):
            total = sum(len(assignment.get((m, p), ())) for p in range(2))
            mine = int((sharded.owner_shard[sources] == m).sum())
            assert total == mine

    def test_all_queries_assigned_once(self, sharded):
        sources = sample_sources(sharded, 10, seed=8)
        assignment = assign_queries(sharded, sources, 3)
        got = np.sort(np.concatenate(list(assignment.values())))
        np.testing.assert_array_equal(got, np.sort(sources))

    def test_invalid_procs(self, sharded):
        with pytest.raises(ValueError):
            assign_queries(sharded, np.array([0]), 0)


class TestBreakdownMapping:
    def test_phase_seconds_maps_categories(self):
        bd = TimeBreakdown()
        bd.charge("local_call", 1.0)
        bd.charge("local_exec", 2.0)
        bd.charge("rpc_issue", 0.5)
        bd.charge("wait", 1.5)
        bd.charge("push", 3.0)
        bd.charge("pop", 0.25)
        bd.charge("mystery", 9.0)
        phases = phase_seconds(bd)
        assert phases["local_fetch"] == pytest.approx(3.0)
        assert phases["remote_fetch"] == pytest.approx(2.0)
        assert phases["push"] == pytest.approx(3.0)
        assert phases["pop"] == pytest.approx(0.25)
        assert phases["other"] == pytest.approx(9.0)

    def test_aggregate_sums_processes(self):
        a, b = TimeBreakdown(), TimeBreakdown()
        a.charge("push", 1.0)
        b.charge("push", 2.0)
        out = aggregate_breakdowns([a, b])
        assert out["push"] == pytest.approx(3.0)

    def test_phase_registry_covers_known_categories(self):
        mapped = {c for cats in PHASES.values() for c in cats}
        assert {"local_call", "local_exec", "rpc_issue", "wait",
                "push", "pop"} <= mapped


class TestLatencies:
    def test_latency_per_query(self):
        g = powerlaw_cluster(300, 6, mixing=0.2, seed=9)
        engine = GraphEngine(g, EngineConfig(n_machines=2))
        run = engine.run(RunRequest(n_queries=6, seed=10))
        assert len(run.latencies) == 6
        assert all(v > 0 for v in run.latencies.values())
        p = run.latency_percentiles()
        assert p[50] <= p[90] <= p[99]
        # makespan is at least the slowest single query
        assert run.makespan >= max(run.latencies.values()) - 1e-12

    def test_empty_latency_percentiles(self):
        from repro.engine.engine import QueryRunResult
        r = QueryRunResult(n_queries=0, makespan=0.0, throughput=0.0,
                           phases={}, per_proc_clocks={}, remote_requests=0,
                           local_calls=0)
        assert r.latency_percentiles() == {50: 0.0, 90: 0.0, 99: 0.0}


class TestSimCluster:
    def test_shard_count_mismatch(self, sharded):
        with pytest.raises(SimulationError, match="shards"):
            SimCluster(sharded, EngineConfig(n_machines=5))

    def test_rrefs_point_to_shards(self, sharded):
        cluster = SimCluster(sharded, EngineConfig(n_machines=3))
        for m, rref in enumerate(cluster.rrefs):
            assert rref.local_value() is sharded.shards[m]

    def test_makespan_empty_cluster(self, sharded):
        cluster = SimCluster(sharded, EngineConfig(n_machines=3))
        assert cluster.run() == 0.0

    def test_results_collects_all(self, sharded):
        from repro.simt.events import Sleep
        cluster = SimCluster(sharded, EngineConfig(n_machines=3))

        def body(value):
            yield Sleep(0.0)
            return value

        cluster.spawn_compute(0, 0, body("a"))
        cluster.spawn_compute(1, 0, body("b"))
        cluster.run()
        assert cluster.results() == {"compute:0.0": "a", "compute:1.0": "b"}
