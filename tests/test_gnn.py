"""Tests for the GNN case-study stack: layers (numerical gradient checks),
model, optimizers, feature store, PPR sampler, and end-to-end training."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.engine.config import EngineConfig
from repro.gnn import (
    Adam,
    Batch,
    Linear,
    SGD,
    SageConv,
    ShadowSage,
    community_task,
    run_distributed_training,
    topk_ppr_nodes,
)
from repro.gnn.layers import softmax_cross_entropy
from repro.gnn.train import make_community_dataset
from repro.graph import powerlaw_cluster
from repro.partition import HashPartitioner
from repro.ppr import PPRParams
from repro.storage import build_shards
from repro.storage.feature_store import (
    FeatureShard,
    assemble_rows,
    split_features,
)


def numerical_grad(f, param, eps=1e-6):
    """Central-difference gradient of scalar f wrt param.value."""
    grad = np.zeros_like(param.value)
    it = np.nditer(param.value, flags=["multi_index"])
    while not it.finished:
        ix = it.multi_index
        orig = param.value[ix]
        param.value[ix] = orig + eps
        f_plus = f()
        param.value[ix] = orig - eps
        f_minus = f()
        param.value[ix] = orig
        grad[ix] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


class TestLayers:
    def test_linear_gradient_check(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 3, seed=1)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))

        def loss_fn():
            return float(((layer.forward(x) - target) ** 2).sum())

        out = layer.forward(x)
        layer.weight.zero_grad()
        layer.bias.zero_grad()
        dx = layer.backward(2 * (out - target))
        for p in (layer.weight, layer.bias):
            num = numerical_grad(loss_fn, p)
            np.testing.assert_allclose(p.grad, num, rtol=1e-5, atol=1e-7)
        # input gradient via perturbation of one entry
        eps = 1e-6
        x2 = x.copy()
        x2[0, 0] += eps
        num_dx = (float(((layer.forward(x2) - target) ** 2).sum())
                  - float(((layer.forward(x) - target) ** 2).sum())) / eps
        assert dx[0, 0] == pytest.approx(num_dx, rel=1e-4)

    def test_sageconv_gradient_check(self):
        rng = np.random.default_rng(1)
        conv = SageConv(3, 2, seed=2)
        h = rng.normal(size=(6, 3))
        adj = sp.random(6, 6, density=0.4, random_state=3, format="csr")
        adj_norm = SageConv.normalize_adj(adj)
        target = rng.normal(size=(6, 2))

        def loss_fn():
            return float(((conv.forward(h, adj_norm) - target) ** 2).sum())

        out = conv.forward(h, adj_norm)
        for p in conv.parameters():
            p.zero_grad()
        conv.backward(2 * (out - target))
        for p in conv.parameters():
            num = numerical_grad(loss_fn, p)
            np.testing.assert_allclose(p.grad, num, rtol=1e-5, atol=1e-7)

    def test_normalize_adj_rows_mean(self):
        adj = sp.csr_matrix(np.array([[0, 2.0, 2.0], [1.0, 0, 0], [0, 0, 0]]))
        norm = SageConv.normalize_adj(adj)
        np.testing.assert_allclose(
            np.asarray(norm.sum(axis=1)).ravel(), [1.0, 1.0, 0.0]
        )

    def test_softmax_cross_entropy(self):
        logits = np.array([[10.0, 0.0], [0.0, 10.0]])
        loss, dlogits, probs = softmax_cross_entropy(
            logits, np.array([0, 1])
        )
        assert loss < 0.01
        assert dlogits.shape == logits.shape
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_softmax_ce_mismatch(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.zeros(3, dtype=int))


class TestModel:
    def make_batch(self, seed=0, n=10, dim=6, classes=3):
        rng = np.random.default_rng(seed)
        adj = sp.random(n, n, density=0.3, random_state=seed, format="csr")
        return Batch(
            x=rng.normal(size=(n, dim)),
            adj=adj,
            ego_idx=np.array([0, 3, 7]),
            y=np.array([0, 1, 2]),
            global_ids=np.arange(n),
        )

    def test_forward_shape(self):
        model = ShadowSage(6, 8, 3, n_layers=2, seed=0)
        batch = self.make_batch()
        logits = model.forward(batch)
        assert logits.shape == (3, 3)

    def test_model_gradient_check(self):
        model = ShadowSage(4, 5, 2, n_layers=2, seed=1)
        rng = np.random.default_rng(2)
        adj = sp.random(7, 7, density=0.4, random_state=2, format="csr")
        batch = Batch(
            x=rng.normal(size=(7, 4)), adj=adj,
            ego_idx=np.array([1, 4]), y=np.array([0, 1]),
            global_ids=np.arange(7),
        )

        def loss_fn():
            logits = model.forward(batch)
            loss, _, _ = softmax_cross_entropy(logits, batch.y)
            return loss

        model.zero_grad()
        model.loss_and_grad(batch)
        # check a couple of parameters (full check is expensive)
        for p in (model.convs[0].w_nbr, model.head.weight, model.head.bias):
            num = numerical_grad(loss_fn, p)
            np.testing.assert_allclose(p.grad, num, rtol=1e-4, atol=1e-7)

    def test_flat_grads_roundtrip(self):
        model = ShadowSage(4, 5, 2, seed=3)
        batch = self.make_batch(seed=3, dim=4, classes=2)
        batch.y = np.array([0, 1, 1])
        model.zero_grad()
        model.loss_and_grad(batch)
        flat = model.flatten_grads()
        grads_before = [p.grad.copy() for p in model.parameters()]
        model.load_flat_grads(flat * 2)
        for p, before in zip(model.parameters(), grads_before):
            np.testing.assert_allclose(p.grad, before * 2)

    def test_flat_grads_wrong_size(self):
        model = ShadowSage(4, 5, 2, seed=4)
        with pytest.raises(ValueError):
            model.load_flat_grads(np.zeros(3))

    def test_single_batch_overfit(self):
        """The model can drive loss to ~0 on one fixed batch."""
        model = ShadowSage(6, 16, 3, seed=5)
        batch = self.make_batch(seed=5)
        opt = Adam(model.parameters(), lr=5e-2)
        losses = []
        for _ in range(60):
            model.zero_grad()
            loss, _ = model.loss_and_grad(batch)
            losses.append(loss)
            opt.step()
        assert losses[-1] < 0.05
        assert losses[-1] < losses[0] / 10


class TestOptimizers:
    def quadratic(self, opt_cls, **kw):
        from repro.gnn.layers import Parameter
        p = Parameter(np.array([5.0, -3.0]))
        opt = opt_cls([p], **kw)
        for _ in range(200):
            p.zero_grad()
            p.grad += 2 * p.value  # d/dx x^2
            opt.step()
        return p.value

    def test_sgd_converges(self):
        final = self.quadratic(SGD, lr=0.1)
        np.testing.assert_allclose(final, 0.0, atol=1e-6)

    def test_sgd_momentum_converges(self):
        final = self.quadratic(SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(final, 0.0, atol=1e-3)

    def test_adam_converges(self):
        final = self.quadratic(Adam, lr=0.1)
        np.testing.assert_allclose(final, 0.0, atol=1e-3)

    def test_invalid_lr(self):
        from repro.gnn.layers import Parameter
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=0.0)
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(2))], lr=-1.0)


class TestFeatureStore:
    def test_split_and_gather(self):
        g = powerlaw_cluster(100, 5, seed=0)
        sharded = build_shards(g, HashPartitioner().partition(g, 3))
        feats = np.arange(300, dtype=np.float64).reshape(100, 3)
        shards = split_features(sharded, feats)
        for p, fs in enumerate(shards):
            rows = fs.gather(np.arange(min(4, fs.n_rows)))
            expected = feats[sharded.shards[p].core_global[:len(rows)]]
            np.testing.assert_allclose(rows, expected)

    def test_split_size_mismatch(self):
        from repro.errors import ShardError
        g = powerlaw_cluster(50, 4, seed=1)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        with pytest.raises(ShardError, match="cover"):
            split_features(sharded, np.zeros((10, 3)))

    def test_gather_out_of_range(self):
        from repro.errors import ShardError
        fs = FeatureShard(0, np.zeros((5, 2)))
        with pytest.raises(ShardError):
            fs.gather([7])

    def test_assemble_rows(self):
        masks = {0: np.array([True, False, True]),
                 1: np.array([False, True, False])}
        parts = {0: np.array([[1.0], [3.0]]), 1: np.array([[2.0]])}
        out = assemble_rows(3, 1, parts, masks)
        np.testing.assert_allclose(out.ravel(), [1.0, 2.0, 3.0])


class TestSampler:
    def test_topk_ppr_nodes(self):
        g = powerlaw_cluster(200, 6, mixing=0.1, n_communities=4, seed=2)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        from tests.test_ppr_ops import run_hashmap_query
        state = run_hashmap_query(sharded, 10, PPRParams(epsilon=1e-5))
        top = topk_ppr_nodes(state, sharded, 16, include=np.array([10]))
        assert 10 in top
        assert len(top) <= 17
        assert np.all(np.diff(top) > 0)  # sorted unique

    def test_topk_invalid_k(self):
        g = powerlaw_cluster(50, 4, seed=3)
        sharded = build_shards(g, HashPartitioner().partition(g, 1))
        from tests.test_ppr_ops import run_hashmap_query
        state = run_hashmap_query(sharded, 0, PPRParams(epsilon=1e-4))
        with pytest.raises(ValueError):
            topk_ppr_nodes(state, sharded, 0)


class TestDistributedTraining:
    def test_learns_community_labels(self):
        g = powerlaw_cluster(1500, 10, mixing=0.08, n_communities=6, seed=4)
        feats, labels = community_task(1500, 6, 12, noise=0.4, seed=5)
        history = run_distributed_training(
            g, feats, labels, EngineConfig(n_machines=2),
            n_steps=12, batch_size=8, topk=24, lr=2e-2, seed=6,
        )
        assert history.steps == 12
        assert len(history.losses) == 12
        # learning signal: loss drops and accuracy beats random (1/6)
        assert history.losses[-1] < history.losses[0]
        assert history.final_accuracy() > 2 / 6

    def test_make_community_dataset_matches_graph(self):
        g = powerlaw_cluster(300, 5, seed=7)
        feats, labels = make_community_dataset(g, n_communities=4,
                                               feature_dim=8)
        assert feats.shape == (300, 8)
        assert labels.max() == 3

    def test_feature_dim_too_small(self):
        with pytest.raises(ValueError, match="feature_dim"):
            community_task(100, 8, 4)
