"""The zero-copy read path: views are bitwise-equal to copies, guarded.

Three pillars:

* **Round-trip equivalence** (hypothesis): a view-backed
  :class:`NeighborBatch` — arrays aliasing the shard's read-only CSC
  arena — and its :meth:`materialize` copy stay bitwise identical
  through ``take_rows``, split + ``merge``, and the serialization cost
  model, for arbitrary id sets (contiguous runs take the slice fast
  path, scattered ids the gather fallback; both must agree).
* **Mutation guard**: the CSC arena and every view into it are
  read-only — an in-place write raises instead of silently corrupting
  outstanding responses; ``materialize()`` detaches.
* **Buffer pool**: deterministic order-independent counters, hit rate
  monotone in request count, zero overhead when disabled, and pool
  bytes folded into ``GraphShard.memory_nbytes``.  End-to-end, both
  runtimes must report bitwise-identical ``rpc.pool.*`` counters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineConfig, GraphEngine, RunRequest
from repro.graph import powerlaw_cluster
from repro.partition import HashPartitioner
from repro.rpc.serialization import BufferPool, payload_sizes, size_class
from repro.storage import build_shards
from repro.storage.neighbor_batch import NeighborBatch


def make_shard(n=150, k=1, seed=9):
    g = powerlaw_cluster(n, 5, mixing=0.3, seed=seed)
    sharded = build_shards(g, HashPartitioner().partition(g, k))
    return sharded.shards[0]


SHARD = make_shard()

#: arbitrary non-empty sorted unique id sets within the shard
id_sets = st.sets(st.integers(min_value=0, max_value=SHARD.n_core - 1),
                  min_size=1, max_size=40).map(
                      lambda s: np.array(sorted(s), dtype=np.int64))

#: contiguous ascending runs (the slice fast path)
runs = st.tuples(
    st.integers(min_value=0, max_value=SHARD.n_core - 1),
    st.integers(min_value=1, max_value=30),
).map(lambda t: np.arange(t[0], min(t[0] + t[1], SHARD.n_core),
                          dtype=np.int64))


def assert_batches_bitwise_equal(a: NeighborBatch, b: NeighborBatch):
    for left, right in zip(a.to_arrays(), b.to_arrays()):
        assert left.dtype == right.dtype
        np.testing.assert_array_equal(left, right)


class TestViewCopyRoundTrip:
    @given(ids=st.one_of(runs, id_sets))
    @settings(max_examples=60, deadline=None)
    def test_materialize_is_bitwise_identical(self, ids):
        batch = SHARD.get_neighbor_batch(ids)
        mat = batch.materialize()
        assert_batches_bitwise_equal(batch, mat)
        # same modeled wire cost: the RPC byte counters cannot move
        assert payload_sizes(batch) == payload_sizes(mat)
        # the copy owns its buffers; the view may alias the frozen arena
        for arr in mat.to_arrays():
            assert arr.flags.writeable

    @given(ids=runs)
    @settings(max_examples=30, deadline=None)
    def test_contiguous_fetch_aliases_the_arena(self, ids):
        batch = SHARD.get_neighbor_batch(ids)
        # the flat arrays are views into the arena, not copies
        assert batch.local_ids.base is not None
        assert np.shares_memory(batch.local_ids, SHARD.nbr_local) \
            or batch.n_entries == 0

    @given(ids=st.one_of(runs, id_sets), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_take_rows_agrees_across_backings(self, ids, data):
        batch = SHARD.get_neighbor_batch(ids)
        mat = batch.materialize()
        n = batch.n_sources
        rows = data.draw(st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1, max_size=n).map(
                lambda r: np.array(r, dtype=np.int64)))
        assert_batches_bitwise_equal(batch.take_rows(rows),
                                     mat.take_rows(rows))

    @given(ids=st.one_of(runs, id_sets), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_split_merge_round_trips(self, ids, data):
        batch = SHARD.get_neighbor_batch(ids)
        n = batch.n_sources
        # arbitrary permutation, arbitrary cut into parts
        perm = np.array(data.draw(st.permutations(range(n))),
                        dtype=np.int64)
        n_parts = data.draw(st.integers(min_value=1, max_value=min(n, 4)))
        cuts = np.array_split(perm, n_parts)
        parts = [(pos, batch.take_rows(pos)) for pos in cuts if len(pos)]
        merged = NeighborBatch.merge(n, parts)
        assert_batches_bitwise_equal(merged, batch)
        # and the merged batch round-trips through materialize too
        assert_batches_bitwise_equal(merged, merged.materialize())


class TestMutationGuard:
    def test_arena_is_read_only(self):
        shard = SHARD
        for arr in (shard.indptr, shard.nbr_local, shard.nbr_shard,
                    shard.nbr_global, shard.nbr_weight, shard.nbr_wdeg,
                    shard.core_wdeg, shard.core_global):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 1

    def test_view_backed_batch_rejects_writes(self):
        batch = SHARD.get_neighbor_batch(np.arange(10, dtype=np.int64))
        with pytest.raises(ValueError):
            batch.local_ids[0] = 99
        with pytest.raises(ValueError):
            batch.weights[0] = 0.5

    def test_materialized_batch_is_writable_and_detached(self):
        batch = SHARD.get_neighbor_batch(np.arange(10, dtype=np.int64))
        mat = batch.materialize()
        if mat.n_entries:
            before = int(batch.local_ids[0])
            mat.local_ids[0] = before + 1  # must not raise
            assert int(batch.local_ids[0]) == before  # view untouched

    def test_halo_cache_views_are_read_only(self):
        g = powerlaw_cluster(200, 5, mixing=0.4, seed=11)
        sharded = build_shards(g, HashPartitioner().partition(g, 2),
                               halo_hops=2)
        shard = sharded.shards[0]
        assert shard.has_halo_cache
        keys = shard._cache_keys
        dest = int(keys[0] % shard.n_shards)
        lids = np.array([int(keys[0] // shard.n_shards)], dtype=np.int64)
        batch = shard.get_cached_batch(dest, lids)
        with pytest.raises(ValueError):
            batch.global_ids[:] = -1


class TestBufferPool:
    def batch(self, lo, hi):
        return SHARD.get_neighbor_batch(np.arange(lo, hi, dtype=np.int64))

    def test_disabled_pool_is_inert(self):
        pool = BufferPool(enabled=False)
        pool.stage(self.batch(0, 20))
        assert pool.requests == pool.hits == pool.misses == 0
        assert pool.nbytes() == 0

    def test_first_response_all_misses_then_all_hits(self):
        pool = BufferPool()
        b = self.batch(0, 20)
        pool.stage(b)
        assert pool.requests == 7 and pool.misses == 7 and pool.hits == 0
        inventory = pool.nbytes()
        pool.stage(b)
        assert pool.requests == 14 and pool.hits == 7
        assert pool.nbytes() == inventory  # steady state: no growth

    def test_hit_rate_monotone_in_request_count(self):
        rates = []
        for n_responses in (1, 2, 4, 8):
            pool = BufferPool()
            for _ in range(n_responses):
                pool.stage(self.batch(0, 20))
            rates.append(pool.hits / pool.requests)
        assert rates == sorted(rates)
        assert rates[-1] > 0.8

    def test_counters_are_order_independent(self):
        responses = [self.batch(0, 5), self.batch(0, 40),
                     self.batch(10, 20), self.batch(0, 40)]
        fwd, rev = BufferPool(), BufferPool()
        for r in responses:
            fwd.stage(r)
        for r in reversed(responses):
            rev.stage(r)
        for attr in ("requests", "hits", "misses", "bytes_reused"):
            assert getattr(fwd, attr) == getattr(rev, attr), attr
        assert fwd.nbytes() == rev.nbytes()

    def test_size_class_shape(self):
        assert size_class(1) == 64
        assert size_class(64) == 64
        assert size_class(65) == 128
        assert size_class(8000) == 8192
        for n in (1, 63, 64, 65, 1000, 4096, 4097):
            cls = size_class(n)
            assert cls >= n and cls >= 64
            assert cls & (cls - 1) == 0  # power of two

    def test_memory_nbytes_includes_attached_pool(self):
        shard = make_shard(n=80, seed=3)
        base = shard.memory_nbytes()
        pool = BufferPool()
        shard.attach_pool(pool)
        assert shard.memory_nbytes() == base
        pool.stage(shard.get_neighbor_batch(np.arange(30, dtype=np.int64)))
        assert pool.nbytes() > 0
        assert shard.memory_nbytes() == base + pool.nbytes()


class TestRpcBoundaryBothRuntimes:
    @pytest.fixture(scope="class")
    def engine(self):
        graph = powerlaw_cluster(400, 5, mixing=0.3, seed=21)
        return GraphEngine(graph, EngineConfig(n_machines=2))

    def test_pool_counters_bitwise_identical_across_runtimes(self, engine):
        from repro.serving.session import Session, SessionConfig

        request = RunRequest(n_queries=6, seed=4, keep_states=True)
        sim = engine.run(request)
        thr = Session(engine, SessionConfig(runtime="threads")).run(request)
        pool_keys = [k for k in sim.metrics if k.startswith("rpc.pool.")]
        assert "rpc.pool.requests" in pool_keys
        assert "rpc.pool.hits" in pool_keys
        for key in pool_keys:
            assert sim.metrics[key] == thr.metrics.get(key), key
        # deterministic RPC byte counters did not move either
        assert sim.metrics["rpc.response_bytes"] == \
            thr.metrics["rpc.response_bytes"]

    def test_results_identical_across_runtimes(self, engine):
        from repro.serving.session import Session, SessionConfig

        request = RunRequest(n_queries=6, seed=4, keep_states=True)
        sim = engine.run(request)
        thr = Session(engine, SessionConfig(runtime="threads")).run(request)
        n = engine.graph.n_nodes
        for gid in sim.states:
            np.testing.assert_array_equal(
                sim.states[gid].dense_result(engine.sharded, n),
                thr.states[gid].dense_result(engine.sharded, n))
