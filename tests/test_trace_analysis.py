"""Trace analytics: critical-path invariants, timelines, doctor reports.

The hypothesis suite generates random span forests straight into a
:class:`SpanTracer` — nested children, overlapping siblings, linked RPC
client/server pairs, zero-width intervals — and asserts the sweep's
conservation contract: the extracted segments partition the root span
*exactly*, every virtual nanosecond attributed once.  Engine-backed
tests then pin the same invariants on real traces from both healthy and
chaos runs, plus the :func:`diagnose` report surface behind
``repro.cli doctor``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineConfig, GraphEngine, RunRequest
from repro.graph import powerlaw_cluster
from repro.obs.analysis import (
    DIAGNOSIS_SCHEMA,
    PATH_PHASES,
    DiagnosisReport,
    Timeline,
    TraceGraph,
    diagnose,
    diff_reports,
    machine_of_process,
    render_diagnosis,
    render_doctor_diff,
    sample_counters,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.rpc import RetryPolicy
from repro.simt import FaultPlan


@pytest.fixture(scope="module")
def engine():
    graph = powerlaw_cluster(500, 6, mixing=0.2, seed=11)
    return GraphEngine(graph, EngineConfig(n_machines=2))


# -- random trace generation -------------------------------------------------
CHILD_NAMES = ("push", "pop", "local_fetch", "stage", "crashed")


def _grow(draw, tracer, parent_id, process, lo, hi, depth):
    """Record random children of ``parent_id`` inside ``[lo, hi]``."""
    if depth >= 3 or hi - lo < 1e-3:
        return
    n = draw(st.integers(min_value=0, max_value=3))
    if n == 0:
        return
    if draw(st.booleans()):
        # disjoint siblings: consecutive pairs of sorted cut points
        pts = sorted(draw(st.lists(
            st.floats(min_value=lo, max_value=hi),
            min_size=2 * n, max_size=2 * n)))
        windows = [(pts[2 * i], pts[2 * i + 1]) for i in range(n)]
    else:
        # free-form: siblings may overlap or hide behind each other —
        # the sweep must clip, never double-count
        windows = []
        for _ in range(n):
            a = draw(st.floats(min_value=lo, max_value=hi))
            b = draw(st.floats(min_value=a, max_value=hi))
            windows.append((a, b))
    for a, b in windows:
        if b > a and draw(st.booleans()):
            cid = tracer.next_id()
            tracer.record("rpc.fetch_rows", process, a, b, span_id=cid,
                          parent_id=parent_id, kind="client")
            s_hi = draw(st.floats(min_value=a, max_value=b))
            s_lo = draw(st.floats(min_value=a, max_value=s_hi))
            tracer.record("fetch_rows", "server:1", s_lo, s_hi,
                          kind="server", link=cid)
        else:
            name = draw(st.sampled_from(CHILD_NAMES))
            sid = tracer.next_id()
            tracer.record(name, process, a, b, span_id=sid,
                          parent_id=parent_id)
            _grow(draw, tracer, sid, process, a, b, depth + 1)


@st.composite
def traces(draw):
    tracer = SpanTracer(max_spans=None)
    end = draw(st.floats(min_value=0.25, max_value=8.0))
    root_id = tracer.next_id()
    _grow(draw, tracer, root_id, "compute:0.1", 0.0, end, 0)
    tracer.record("query", "compute:0.1", 0.0, end, span_id=root_id)
    return tracer


class TestPathInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_segments_partition_root_exactly(self, tracer):
        graph = TraceGraph.from_tracer(tracer)
        assert len(graph.roots) == 1
        path = graph.critical_path(graph.roots[0])
        path.validate()  # exact-equality chaining
        assert all(seg.duration >= 0.0 for seg in path.segments)
        assert path.conservation_error() <= 1e-9
        # buckets and phases are alternative partitions of the same time
        assert abs(sum(path.totals().values()) - path.duration) <= 1e-9
        phases = path.phase_totals()
        assert set(phases) >= set(PATH_PHASES)
        assert abs(sum(phases.values()) - path.duration) <= 1e-9

    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_attribution_is_consistent(self, tracer):
        path = TraceGraph.from_tracer(tracer).critical_paths()[0]
        for seg in path.segments:
            assert seg.machine == machine_of_process(seg.process)
            assert seg.phase in PATH_PHASES
            if seg.kind == "serve":
                assert seg.process == "server:1"
                assert seg.phase == "serve"
            elif seg.kind == "network":
                assert seg.phase == "remote_fetch"
            if seg.name == "crashed" and seg.kind != "self":
                assert seg.fault == "crash"


class TestClientSweep:
    """Deterministic pins on the RPC client-window split."""

    def _path(self, tracer):
        return TraceGraph.from_tracer(tracer).critical_paths()[0]

    def test_tail_attributed_to_server(self):
        tracer = SpanTracer(max_spans=None)
        rid = tracer.next_id()
        cid = tracer.next_id()
        tracer.record("rpc.fetch_rows", "compute:0.1", 1.0, 5.0,
                      span_id=cid, parent_id=rid, kind="client")
        tracer.record("fetch_rows", "server:1", 2.0, 3.5,
                      kind="server", link=cid)
        tracer.record("query", "compute:0.1", 0.0, 6.0, span_id=rid)
        path = self._path(tracer)
        shape = [(s.kind, s.start, s.end, s.machine) for s in path.segments]
        # server executed 1.5s, attributed at the window's *tail*
        assert shape == [("self", 0.0, 1.0, 0), ("network", 1.0, 3.5, 0),
                         ("serve", 3.5, 5.0, 1), ("self", 5.0, 6.0, 0)]
        assert path.phase_totals()["serve"] == 1.5

    def test_server_longer_than_window_clamps(self):
        tracer = SpanTracer(max_spans=None)
        rid = tracer.next_id()
        cid = tracer.next_id()
        tracer.record("rpc.fetch_rows", "compute:0.1", 1.0, 3.0,
                      span_id=cid, parent_id=rid, kind="client")
        # a server span longer than the clipped client window (e.g. the
        # window lost time to an earlier sibling) claims all of it
        tracer.record("fetch_rows", "server:1", 0.0, 10.0,
                      kind="server", link=cid)
        tracer.record("query", "compute:0.1", 1.0, 3.0, span_id=rid)
        path = self._path(tracer)
        kinds = [s.kind for s in path.segments]
        assert kinds == ["serve"]
        assert path.phase_totals()["serve"] == 2.0
        path.validate()

    def test_unlinked_client_is_all_network(self):
        tracer = SpanTracer(max_spans=None)
        rid = tracer.next_id()
        cid = tracer.next_id()
        tracer.record("rpc.fetch_rows", "compute:0.1", 1.0, 3.0,
                      span_id=cid, parent_id=rid, kind="client")
        tracer.record("query", "compute:0.1", 0.0, 4.0, span_id=rid)
        path = self._path(tracer)
        net = [s for s in path.segments if s.kind == "network"]
        assert len(net) == 1
        assert (net[0].start, net[0].end) == (1.0, 3.0)
        assert not [s for s in path.segments if s.kind == "serve"]

    def test_client_error_attr_becomes_fault_bucket(self):
        tracer = SpanTracer(max_spans=None)
        rid = tracer.next_id()
        cid = tracer.next_id()
        tracer.record("rpc.fetch_rows", "compute:0.1", 1.0, 3.0,
                      span_id=cid, parent_id=rid, kind="client",
                      attrs={"error": "timeout"})
        tracer.record("query", "compute:0.1", 0.0, 4.0, span_id=rid)
        path = self._path(tracer)
        faults = {s.fault for s in path.segments if s.kind == "network"}
        assert faults == {"timeout"}
        assert any(b[3] == "timeout" for b in path.totals())


class TestEnginePaths:
    def test_single_query_path_equals_query_span(self, engine):
        run = engine.run(RunRequest(n_queries=1, seed=3, trace=True))
        graph = TraceGraph.from_tracer(run.obs.tracer)
        paths = graph.critical_paths()
        assert len(paths) == 1
        (query_span,) = run.obs.tracer.by_name("query")
        assert paths[0].root is query_span
        assert paths[0].duration == query_span.duration
        assert paths[0].conservation_error() <= 1e-9
        assert paths[0].duration <= run.makespan + 1e-9

    def test_multi_query_paths_within_makespan(self, engine):
        run = engine.run(RunRequest(n_queries=6, seed=4, trace=True))
        paths = TraceGraph.from_tracer(run.obs.tracer).critical_paths()
        assert len(paths) == 6
        for path in paths:
            path.validate()
            assert path.conservation_error() <= 1e-9
            assert path.duration <= run.makespan + 1e-9

    def test_chaos_paths_still_conserve(self, engine):
        run = engine.run(RunRequest(
            n_queries=6, seed=4, trace=True,
            fault_plan=FaultPlan(seed=13, drop_prob=0.15),
            retry_policy=RetryPolicy(max_attempts=6, timeout=5.0)))
        assert run.retries > 0
        report = diagnose(run)
        assert report.has_trace
        assert report.conservation_error <= 1e-9
        assert report.paths_within_makespan


class TestDiagnose:
    def test_report_fields_and_json_roundtrip(self, engine):
        run = engine.run(RunRequest(n_queries=4, seed=5, trace=True,
                                    timeline=0.05))
        report = diagnose(run)
        assert report.schema == DIAGNOSIS_SCHEMA
        assert report.has_trace
        assert report.n_queries == 4
        assert report.n_paths == 4
        assert not report.trace_incomplete
        assert report.paths_within_makespan
        assert report.conservation_error <= 1e-9
        assert abs(sum(report.phase_totals.values())
                   - report.path_total_s) <= 1e-9
        assert report.path_buckets  # non-empty, descending seconds
        secs = [row["seconds"] for row in report.path_buckets]
        assert secs == sorted(secs, reverse=True)
        assert {row["machine"] for row in report.stragglers} == {0, 1}
        assert report.timeline is not None
        again = DiagnosisReport.from_json(report.to_json())
        assert again.to_dict() == report.to_dict()
        text = render_diagnosis(report)
        assert "critical paths: 4" in text

    def test_from_dict_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="unsupported"):
            DiagnosisReport.from_dict({"schema": "repro.diagnosis/v999"})

    def test_trace_incomplete_flag(self, engine):
        run = engine.run(RunRequest(n_queries=4, seed=5, trace=True,
                                    max_spans=8))
        report = diagnose(run)
        assert report.spans_dropped > 0
        assert report.trace_incomplete
        assert "WARNING: trace incomplete" in render_diagnosis(report)

    def test_self_diff_is_empty(self, engine):
        run = engine.run(RunRequest(n_queries=3, seed=6, trace=True))
        report = diagnose(run)
        diff = diff_reports(report, report)
        assert diff["n_moved"] == 0
        assert diff["moved"] == []
        assert diff["phase_deltas"] == {}
        assert diff["makespan_delta"] == 0.0
        assert "no critical-path buckets moved" in render_doctor_diff(diff)

    def test_untraced_run_still_diagnoses_counters(self, engine):
        run = engine.run(RunRequest(n_queries=3, seed=6))
        report = diagnose(run)
        assert not report.has_trace
        assert report.n_paths == 0
        assert report.cache["verdict"] in ("effective", "marginal",
                                           "ineffective", "idle")
        assert "no span trace attached" in render_diagnosis(report)


class TestTimeline:
    def test_sample_ordering_enforced(self):
        tl = Timeline()
        tl.sample(0.0, {"a": 1})
        tl.sample(0.0, {"a": 2})  # equal timestamps are fine
        tl.sample(1.0, {"a": 3})
        with pytest.raises(ValueError, match="time-ordered"):
            tl.sample(0.5, {"a": 4})
        assert tl.series("a") == [(0.0, 1), (0.0, 2), (1.0, 3)]
        assert tl.names() == ("a",)

    def test_dict_roundtrip(self):
        tl = Timeline(interval=0.25)
        tl.sample(0.0, {"rpc.calls": 0})
        tl.sample(0.25, {"rpc.calls": 7, "fetch.requests": 2})
        again = Timeline.from_dict(tl.to_dict())
        assert again.to_dict() == tl.to_dict()
        assert again.interval == 0.25
        assert len(again) == 2

    def test_sample_counters_missing_is_zero(self):
        reg = MetricsRegistry()
        reg.inc("rpc.calls", 3)
        assert sample_counters(reg, ("rpc.calls", "rpc.retries")) == \
            {"rpc.calls": 3, "rpc.retries": 0}

    def test_request_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            RunRequest(n_queries=1, timeline=0.0)

    def test_sim_run_samples_on_the_grid(self, engine):
        run = engine.run(RunRequest(n_queries=4, seed=7, timeline=0.05))
        tl = run.timeline
        assert tl is not None and len(tl) >= 2
        ts = [s.t for s in tl.samples]
        assert ts == sorted(ts)
        assert tl.samples[0].t == 0.0
        assert tl.samples[0].values["rpc.calls"] == 0
        # the final sample agrees with the run's own counter snapshot
        metrics = dict(run.metrics)
        assert tl.samples[-1].values["rpc.calls"] == metrics["rpc.calls"]
        assert tl.samples[-1].t >= run.makespan - 1e-9
        # counters are cumulative: every watched series is non-decreasing
        for name in ("rpc.calls", "rpc.calls_remote", "fetch.requests"):
            series = [v for _, v in tl.series(name)]
            assert series == sorted(series)


class TestMachineOfProcess:
    @pytest.mark.parametrize("process,machine", [
        ("compute:3.2", 3), ("server:1", 1), ("compute:0.1", 0),
        ("driver", -1), ("compute:x.1", -1),
    ])
    def test_parse(self, process, machine):
        assert machine_of_process(process) == machine
