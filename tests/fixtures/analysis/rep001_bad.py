"""REP001 positive fixture: direct wall-clock reads."""
import time
from datetime import datetime

start = time.time()
t1 = time.perf_counter()
stamp = datetime.now()
