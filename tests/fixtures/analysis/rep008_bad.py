"""REP008 positive fixture: two lock-order cycles, one per style.

Expected hits: 4 — each 2-cycle is reported once per edge, at the
acquisition witnessing it (the nested ``with`` or the call made while
holding the other lock).
"""
import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def forward():
    with LOCK_A:
        with LOCK_B:  # edge A -> B
            pass


def backward():
    with LOCK_B:
        with LOCK_A:  # edge B -> A: closes the cycle
            pass


class Pool:
    """The interprocedural variant: the inversion spans a call edge."""

    def __init__(self):
        self._alloc_lock = threading.Lock()
        self._free_lock = threading.Lock()

    def allocate(self):
        with self._alloc_lock:
            self._reclaim()  # acquires _free_lock while holding _alloc_lock

    def _reclaim(self):
        with self._free_lock:
            pass

    def release(self):
        with self._free_lock:
            with self._alloc_lock:  # inverted: closes the cycle
                pass
