"""REP002 negative fixture: every generator is explicitly seeded."""
import numpy as np

rng = np.random.default_rng(42)
bitgen = np.random.PCG64(7)
ss = np.random.SeedSequence(123)
values = rng.integers(0, 10, size=4)
