"""REP008 negative fixture: every path agrees on one acquisition order."""
import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def forward():
    with LOCK_A:
        with LOCK_B:
            pass


def also_forward():
    with LOCK_A:
        nested()


def nested():
    with LOCK_B:
        pass


def only_b():
    with LOCK_B:
        pass
