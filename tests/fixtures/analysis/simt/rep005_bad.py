"""REP005 positive fixture: blocking calls inside coroutine drivers."""
import time
from pathlib import Path


def driver(q):
    time.sleep(0.1)
    payload = Path("dump.bin").read_bytes()
    item = q.get()
    yield payload, item
