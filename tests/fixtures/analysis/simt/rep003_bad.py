"""REP003 positive fixture: unordered iteration in a scoped (simt/) path."""
workers = {"w2", "w0", "w1"}
table = {"a": 1, "b": 2}

for name in {"w2", "w0", "w1"}:
    print(name)

order = [k for k in table.keys()]

for name in workers | {"w3"}:
    print(name)
