"""REP005 negative fixture: the driver suspends only via simt effects."""
import time


def driver(sleep_effect, wait_effect):
    yield sleep_effect
    value = yield wait_effect
    return value


def not_a_coroutine():
    # blocking is fine outside generator bodies (setup/teardown code)
    time.sleep(0.0)


def driver_with_timeout(q):
    item = q.get(timeout=0.5)
    yield item
