"""REP003 negative fixture: dispatch order explicitly pinned."""
workers = {"w2", "w0", "w1"}
table = {"a": 1, "b": 2}

for name in sorted(workers):
    print(name)

order = [k for k in sorted(table)]

for name, value in table.items():
    print(name, value)
