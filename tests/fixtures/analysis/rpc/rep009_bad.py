"""REP009 positive fixture: shared containers mutated with no lock held.

Expected hits: 3 — a subscript store, an augmented assignment, and a
mutator method call, all against module-level containers reachable from
any thread.
"""

REGISTRY = {}
COUNTS = {}
PENDING = []


def register(key, value):
    REGISTRY[key] = value  # subscript store, no lock


def bump(key):
    COUNTS[key] += 1  # augassign, no lock


def enqueue(item):
    PENDING.append(item)  # mutator call, no lock
