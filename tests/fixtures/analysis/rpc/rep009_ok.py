"""REP009 negative fixture: every shared mutation is lock-disciplined.

Covers the three accepted shapes: a lock held at the mutation site, a
helper whose *every* resolved caller already holds the lock, and
mutation of function-local (unshared) state.
"""
import threading

REGISTRY = {}
_LOCK = threading.Lock()


def register(key, value):
    with _LOCK:
        REGISTRY[key] = value


def register_many(pairs):
    with _LOCK:
        for key, value in pairs:
            _insert(key, value)


def _insert(key, value):
    # no lock here, but every caller holds _LOCK
    REGISTRY[key] = value


def local_scratch(items):
    seen = {}
    for item in items:
        seen[item] = True  # function-local: not shared
    return seen
