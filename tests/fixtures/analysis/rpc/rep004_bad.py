"""REP004 positive fixture: payloads the RPC cost model cannot size."""


def dispatch(ref):
    f1 = ref.rpc_async("apply", lambda x: x + 1)
    f2 = ref.rpc("transform", (i * i for i in range(4)))
    f3 = ref.rpc_async("fill", ...)
    return f1, f2, f3


def dispatch_dataflow(ref):
    handler = lambda x: x * 2  # noqa: E731
    bad_payload = ...
    f4 = ref.rpc_async("apply", handler)
    f5 = ref.rpc("fill", bad_payload)
    return f4, f5
