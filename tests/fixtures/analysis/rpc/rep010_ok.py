"""REP010 negative fixture: registered handlers, bindable payloads.

Covers direct literals on both dispatch attrs, the ``rref_call`` tuple
payload form, and a method name forwarded through a helper parameter
(resolved one call-graph hop out).
"""
from repro.rpc.handlers import rpc_handler


class RowServer:
    @rpc_handler
    def get_rows(self, lo, hi=None):
        return (lo, hi)

    @rpc_handler
    def shutdown_server(self):
        return None


def driver(ctx, ref):
    ctx.rpc_async(ref, "get_rows", 3)
    ctx.rpc_sync_effect(ref, "get_rows", 3, 9)
    ctx.rref_call("w0", ref, "get_rows", (3,), {"hi": 9})
    _broadcast(ctx, ref, "shutdown_server")


def _broadcast(ctx, ref, method):
    ctx.rpc_async(ref, method)
