"""REP006 negative fixture: typed catches, or broad catch that re-raises."""


def typed(call):
    try:
        return call()
    except ValueError:
        return None


def logged_reraise(call, log):
    try:
        return call()
    except Exception as exc:
        log.append(exc)
        raise
