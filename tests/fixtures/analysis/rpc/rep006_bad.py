"""REP006 positive fixture: broad excepts that swallow faults."""


def swallow_all(call):
    try:
        return call()
    except Exception:
        return None


def swallow_bare(call):
    try:
        return call()
    except:  # noqa: E722
        return None
