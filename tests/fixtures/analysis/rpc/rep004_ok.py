"""REP004 negative fixture: payloads the cost model prices happily."""


def dispatch(ref, array):
    f1 = ref.rpc_async("lookup", [1, 2, 3], {"alpha": 0.5})
    f2 = ref.rpc("push", array, mode="batched")
    return f1, f2


def dispatch_dataflow(ref, array):
    opts = {"alpha": 0.5, "steps": 3}
    sizes = array.rpc_payload()
    f3 = ref.rpc_async("configure", opts)
    f4 = ref.rpc("report", sizes)
    reassigned = lambda x: x  # noqa: E731
    reassigned = [1, 2]
    f5 = ref.rpc_async("push", reassigned)
    for looped in ([1], [2]):
        f6 = ref.rpc("push", looped)
    return f3, f4, f5, f6
