"""REP004 negative fixture: payloads the cost model prices happily."""


def dispatch(ref, array):
    f1 = ref.rpc_async("lookup", [1, 2, 3], {"alpha": 0.5})
    f2 = ref.rpc("push", array, mode="batched")
    return f1, f2
