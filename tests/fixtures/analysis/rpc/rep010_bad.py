"""REP010 positive fixture: every dispatch-contract failure mode.

Expected hits: 3 — a dispatch of a method nothing registers, a payload
the registered handler cannot bind, and a decorated handler nothing
dispatches (dead remote surface).
"""
from repro.rpc.handlers import rpc_handler


class ShardServer:
    @rpc_handler
    def fetch_chunk(self, chunk_id):
        return chunk_id

    @rpc_handler
    def orphan_probe(self):  # never dispatched anywhere
        return None


def driver(ctx, ref):
    ctx.rpc_async(ref, "fetch_chunk", 7)          # fine
    ctx.rpc_async(ref, "deleted_method", 7)       # no such handler
    ctx.rpc_async(ref, "fetch_chunk", 7, 8, 9)    # arity mismatch
