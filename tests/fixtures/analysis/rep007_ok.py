"""REP007 negative fixture: catalogued namespaces and dynamic names."""
from repro.obs import MetricsRegistry

metrics = MetricsRegistry()
metrics.inc("fetch.requests")
metrics.set("serve.queue_depth", 3)
metrics.observe("rpc.latency", 0.25)
tenant = "gold"
metrics.inc(f"serve.tenant.{tenant}.admitted")   # literal head passes
name = "anything.goes"
metrics.inc(name)                                # dynamic name: skipped
metrics.counter("whatever").inc(2)               # first arg not a string
