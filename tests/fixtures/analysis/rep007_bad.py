"""REP007 positive fixture: metric names outside the catalog."""
from repro.obs import MetricsRegistry

metrics = MetricsRegistry()
metrics.inc("cache.hits")                     # undeclared namespace
metrics.set("serv.queue_depth", 3)            # typo'd namespace
metrics.observe(f"latency.{'p99'}", 0.25)     # f-string literal head
