"""REP001 negative fixture: clocks only via the sanctioned shims."""
from repro.utils.timer import Stopwatch, wall_unix

stamp = wall_unix()
with Stopwatch() as sw:
    total = sum(range(10))
elapsed = sw.elapsed
