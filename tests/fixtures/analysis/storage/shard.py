"""REP011 positive fixture: raw allocations on the zero-copy read path.

The path suffix ``storage/shard.py`` puts this file in REP011's scope;
every un-pragma'd ``.copy()`` / ``np.repeat`` / ``np.concatenate`` here
must be flagged.
"""

import numpy as np


def gather_rows(arena, starts, counts):
    idx = np.repeat(starts, counts)
    return arena[idx].copy()


def reassemble(parts):
    return np.concatenate(parts)
