"""REP011 negative fixture: views are free, sanctioned copies are pragma'd.

Same scope as the positive fixture (path ends in ``storage/fetch.py``)
but every allocation either disappears into a slice or carries an
explicit ``# repro: allow=REP011`` pragma with its reason.
"""

import numpy as np


def contiguous_rows(arena, lo, hi):
    return arena[lo:hi]  # a view into the arena: nothing allocated


def materialize(tensors):
    # repro: allow=REP011 copy-on-serialize at the RPC boundary
    return tuple(t.copy() for t in tensors)


def gather_fallback(arena, starts, counts):
    idx = np.repeat(starts, counts)  # repro: allow=REP011 non-contiguous gather
    return arena[idx]


def merge(parts):
    return np.concatenate(parts)  # repro: allow=REP011 reassembly copies
