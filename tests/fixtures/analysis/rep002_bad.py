"""REP002 positive fixture: unseeded / global-state randomness."""
import random

import numpy as np

rng = np.random.default_rng()
x = random.random()
np.random.shuffle([1, 2, 3])
