"""The same distributed drivers running over real OS threads.

These tests demonstrate that the engine's coroutine code is runtime-
agnostic: identical PPR results under genuine concurrency (multiple worker
threads fetching from shared shard servers), exercising the thread-safety
of the storage layer (read-only shards + locked sampling RNG).
"""

import numpy as np
import pytest

from repro.graph import powerlaw_cluster
from repro.partition import MetisLitePartitioner
from repro.ppr import PPRParams, forward_push_parallel
from repro.ppr.distributed import OptLevel, distributed_sppr_query
from repro.rpc import ThreadRuntime
from repro.storage import DistGraphStorage, build_shards
from repro.walk.random_walk import distributed_random_walk

PARAMS = PPRParams(epsilon=1e-5)


def make_cluster(graph, n_machines, runtime):
    sharded = build_shards(
        graph, MetisLitePartitioner(seed=0).partition(graph, n_machines)
    )
    rrefs = []
    for m in range(n_machines):
        runtime.register_server(f"server:{m}", m)
        rrefs.append(runtime.create_remote(
            f"server:{m}", "storage", lambda s=sharded.shards[m]: s
        ))
    return sharded, rrefs


def collector_driver(g, proc, sources, sharded, out):
    local_ids, _ = sharded.address_of(sources)
    for gid, lid in zip(sources.tolist(), local_ids.tolist()):
        state = yield from distributed_sppr_query(
            g, proc, lid, PARAMS, opt=OptLevel.OVERLAP
        )
        out[gid] = state
    return len(sources)


class TestThreadedSSPPR:
    def test_concurrent_queries_match_reference(self):
        graph = powerlaw_cluster(500, 8, mixing=0.15, seed=3)
        runtime = ThreadRuntime()
        sharded, rrefs = make_cluster(graph, 3, runtime)
        out = {}
        try:
            for m in range(3):
                name = f"compute:{m}"
                runtime.register_worker(name, m)
                mine = np.flatnonzero(sharded.owner_shard == np.int64(m))[:3]
                g = DistGraphStorage(rrefs, m, name, compress=True)
                proc = runtime.process_of(name)
                runtime.spawn(name, collector_driver(
                    g, proc, mine, sharded, out
                ))
            runtime.join(timeout=120)
        finally:
            runtime.shutdown()
        assert len(out) == 9
        bound = 2 * PARAMS.epsilon * graph.weighted_degrees.sum()
        for gid, state in out.items():
            approx = state.dense_result(sharded, graph.n_nodes)
            ref, _, _ = forward_push_parallel(graph, gid, PARAMS)
            assert np.abs(approx - ref).sum() <= bound
            assert state.total_mass() == pytest.approx(1.0)
        # remote fetches really crossed "machines"
        assert runtime.remote_requests > 0

    def test_threaded_random_walks_are_valid(self):
        graph = powerlaw_cluster(300, 6, seed=4)
        runtime = ThreadRuntime()
        sharded, rrefs = make_cluster(graph, 2, runtime)
        try:
            names = []
            for m in range(2):
                name = f"walker:{m}"
                runtime.register_worker(name, m)
                roots = np.flatnonzero(sharded.owner_shard == np.int64(m))[:5]
                g = DistGraphStorage(rrefs, m, name, compress=True)
                proc = runtime.process_of(name)
                runtime.spawn(name, distributed_random_walk(
                    g, proc, roots, sharded, walk_length=6
                ))
                names.append(name)
            runtime.join(timeout=120)
        finally:
            runtime.shutdown()
        for name in names:
            walks = runtime.process_of(name).result
            assert walks.shape[1] == 7
            for row in walks:
                for s in range(6):
                    u, v = row[s], row[s + 1]
                    assert u == v or graph.has_arc(int(u), int(v))

    def test_driver_exception_propagates_via_join(self):
        runtime = ThreadRuntime()
        runtime.register_worker("w0", 0)

        def bad_driver():
            raise RuntimeError("driver blew up")
            yield  # pragma: no cover - makes this a generator

        runtime.spawn("w0", bad_driver())
        with pytest.raises(RuntimeError, match="driver blew up"):
            runtime.join(timeout=10)

    def test_spawn_unregistered_rejected(self):
        from repro.errors import RpcError
        runtime = ThreadRuntime()

        def driver():
            yield

        with pytest.raises(RpcError, match="must be registered"):
            runtime.spawn("ghost", driver())
