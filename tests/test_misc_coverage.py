"""Coverage for smaller surfaces: DistGraphStorage validation, VertexProp
payload semantics, CLI halo-hops path, dataset spec integrity."""

import numpy as np
import pytest

from repro.graph import DATASETS, powerlaw_cluster, save_npz
from repro.partition import HashPartitioner
from repro.rpc.serialization import payload_sizes
from repro.storage import DistGraphStorage, build_shards
from repro.storage.dist_storage import DistGraphStorage as DGS


class TestDistGraphStorageValidation:
    def make_rrefs(self, k=2):
        from repro.engine import EngineConfig
        from repro.engine.cluster import SimCluster
        g = powerlaw_cluster(100, 4, seed=0)
        sharded = build_shards(g, HashPartitioner().partition(g, k))
        cluster = SimCluster(sharded, EngineConfig(n_machines=k))
        return cluster.rrefs

    def test_bad_shard_id(self):
        rrefs = self.make_rrefs(2)
        with pytest.raises(ValueError, match="shard_id"):
            DistGraphStorage(rrefs, 5, "w")

    def test_shard_masks_cover_everything(self):
        rrefs = self.make_rrefs(3)
        g = DGS(rrefs, 0, "w")
        shard_ids = np.array([0, 1, 2, 1, 0])
        masks = g.shard_masks(shard_ids)
        assert set(masks) == {0, 1, 2}
        total = sum(len(m) for m in masks.values())
        assert total == 5
        # index arrays match flatnonzero of the boolean masks exactly
        for j, idx in masks.items():
            np.testing.assert_array_equal(idx, np.flatnonzero(shard_ids == j))

    def test_shard_masks_only_present_shards(self):
        rrefs = self.make_rrefs(3)
        g = DGS(rrefs, 0, "w")
        masks = g.shard_masks(np.array([1, 1, 1]))
        assert set(masks) == {1}
        assert masks.get(0) is None
        np.testing.assert_array_equal(masks[1], np.arange(3))
        assert g.shard_masks(np.array([], dtype=np.int64)) == {}

    def test_is_local(self):
        rrefs = self.make_rrefs(2)
        # caller registered on machine 0 by SimCluster server bring-up is
        # the server itself; use the worker-info of the rrefs' context
        ctx = rrefs[0].ctx
        from repro.simt.events import Sleep

        def body():
            yield Sleep(0)

        proc = ctx.scheduler.spawn("w0", body())
        ctx.register_worker("w0", 0, proc)
        g = DGS(rrefs, 0, "w0")
        assert g.is_local(0)
        assert not g.is_local(1)
        ctx.scheduler.run()


class TestVertexPropPayload:
    def test_local_handoff_is_cheap(self):
        g = powerlaw_cluster(200, 6, seed=1)
        sharded = build_shards(g, HashPartitioner().partition(g, 1))
        prop = sharded.shards[0].get_vertex_props(np.arange(50))
        nbytes, n_tensors = payload_sizes(prop)
        # pointer-passing, not data: far below the real row data size
        batch = sharded.shards[0].get_neighbor_batch(np.arange(50))
        real_bytes, _ = payload_sizes(batch)
        assert nbytes < real_bytes / 5
        assert n_tensors == 1

    def test_vertex_prop_degree_accessors(self):
        g = powerlaw_cluster(100, 5, seed=2)
        sharded = build_shards(g, HashPartitioner().partition(g, 1))
        shard = sharded.shards[0]
        ids = np.array([0, 1, 2])
        prop = shard.get_vertex_props(ids)
        for i, lid in enumerate(ids):
            gid = shard.core_global[lid]
            assert prop.degree(i) == g.out_degree(int(gid))
        np.testing.assert_allclose(prop.source_weighted_degrees(),
                                   shard.core_wdeg[ids])


class TestCliHaloHops:
    def test_partition_with_two_hop_cache(self, tmp_path, capsys):
        from repro.cli import main
        g = powerlaw_cluster(200, 5, mixing=0.2, seed=3)
        graph_path = tmp_path / "g.npz"
        save_npz(graph_path, g)
        out_path = str(tmp_path / "s2.npz")
        assert main(["partition", str(graph_path), "--machines", "2",
                     "--halo-hops", "2", "--output", out_path]) == 0
        from repro.storage.persist import load_sharded
        loaded = load_sharded(out_path)
        assert loaded.shards[0].has_halo_cache


class TestDatasetSpecs:
    def test_all_specs_have_distinct_seeds(self):
        seeds = [spec.seed for spec in DATASETS.values()]
        assert len(set(seeds)) == len(seeds)

    def test_spec_fields_sane(self):
        for spec in DATASETS.values():
            assert spec.n_nodes > 0
            assert spec.avg_degree > 0
            assert 1.0 < spec.exponent < 10.0
            assert 0.0 <= spec.mixing <= 1.0
            if spec.max_degree is not None:
                assert spec.max_degree > spec.avg_degree

    def test_paper_names_present(self):
        names = {spec.paper_name for spec in DATASETS.values()}
        assert names == {"Ogbn-products", "Twitter", "Friendster",
                         "Ogbn-papers100M"}
