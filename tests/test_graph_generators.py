"""Tests for graph generators, dataset stand-ins, IO, and stats."""

import numpy as np
import pytest

from repro.graph import (
    DATASETS,
    complete_graph,
    compute_stats,
    cycle_graph,
    erdos_renyi,
    load_dataset,
    load_npz,
    path_graph,
    powerlaw_cluster,
    rmat,
    save_npz,
    star_graph,
    table1_rows,
)
from repro.graph.stats import format_table


class TestDeterministicGraphs:
    def test_path(self):
        g = path_graph(4)
        assert g.n_arcs == 6
        np.testing.assert_array_equal(g.neighbors(1), [0, 2])
        assert g.out_degree(0) == 1

    def test_cycle(self):
        g = cycle_graph(5)
        np.testing.assert_array_equal(g.out_degree(), [2] * 5)

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.out_degree(0) == 6
        assert g.out_degree(3) == 1

    def test_complete(self):
        g = complete_graph(5)
        np.testing.assert_array_equal(g.out_degree(), [4] * 5)


class TestRandomGenerators:
    def test_powerlaw_reproducible(self):
        g1 = powerlaw_cluster(500, 8, seed=3)
        g2 = powerlaw_cluster(500, 8, seed=3)
        np.testing.assert_array_equal(g1.indices, g2.indices)
        np.testing.assert_allclose(g1.weights, g2.weights)

    def test_powerlaw_avg_degree_near_target(self):
        g = powerlaw_cluster(2000, 10, exponent=2.5, seed=5)
        realized = g.n_arcs / g.n_nodes
        assert 6.0 < realized <= 10.5

    def test_powerlaw_respects_cap_roughly(self):
        g = powerlaw_cluster(3000, 10, exponent=1.8, max_degree=60, seed=7)
        # realized degrees fluctuate around expected; allow Poisson headroom
        assert g.out_degree().max() < 60 * 2

    def test_powerlaw_is_skewed(self):
        g = powerlaw_cluster(3000, 10, exponent=2.0, seed=9)
        deg = g.out_degree()
        assert deg.max() > 5 * deg.mean()

    def test_powerlaw_invalid_cap(self):
        with pytest.raises(ValueError, match="max_degree"):
            powerlaw_cluster(100, 10, max_degree=5, seed=0)

    def test_powerlaw_weights_in_range(self):
        g = powerlaw_cluster(200, 6, seed=1)
        assert np.all(g.weights > 0.5 - 1e-9)
        assert np.all(g.weights < 1.5 + 1e-9)

    def test_unweighted_option(self):
        g = powerlaw_cluster(200, 6, weighted=False, seed=1)
        np.testing.assert_array_equal(g.weights, np.ones(g.n_arcs))

    def test_rmat_shape(self):
        g = rmat(8, edge_factor=4, seed=11)
        assert g.n_nodes == 256
        assert g.n_arcs > 0
        assert g.is_symmetric()

    def test_rmat_invalid_probs(self):
        with pytest.raises(ValueError, match="R-MAT"):
            rmat(4, a=0.9, b=0.2, c=0.2)

    def test_rmat_skew(self):
        g = rmat(10, edge_factor=8, seed=13)
        deg = g.out_degree()
        assert deg.max() > 4 * deg.mean()

    def test_erdos_renyi_near_uniform(self):
        g = erdos_renyi(2000, 10, seed=17)
        deg = g.out_degree()
        assert deg.max() < 4 * deg.mean()


class TestDatasets:
    def test_registry_names(self):
        assert set(DATASETS) == {"products", "twitter", "friendster", "papers"}

    def test_tiny_scale_loads(self):
        g = load_dataset("products", scale=0.01, use_cache=False)
        assert g.n_nodes == 250
        assert g.is_symmetric()

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            DATASETS["products"].generate(scale=0.0)

    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        g1 = load_dataset("products", scale=0.01)
        assert (tmp_path / "products-s0.01-seed101.npz").exists()
        g2 = load_dataset("products", scale=0.01)
        np.testing.assert_array_equal(g1.indices, g2.indices)

    @pytest.mark.slow
    def test_skew_ordering_matches_paper(self):
        """d_max/d_avg: twitter > papers > products > friendster."""
        ratios = {}
        for name in DATASETS:
            g = load_dataset(name, scale=0.08, use_cache=False)
            s = compute_stats(name, g)
            ratios[name] = s.max_degree / max(s.avg_degree, 1e-9)
        assert ratios["twitter"] > ratios["products"] > ratios["friendster"]
        assert ratios["papers"] > ratios["products"]


class TestIO:
    def test_npz_roundtrip(self, tmp_path):
        g = powerlaw_cluster(300, 6, seed=2)
        path = tmp_path / "g.npz"
        save_npz(path, g)
        g2 = load_npz(path)
        assert g2.n_nodes == g.n_nodes
        np.testing.assert_array_equal(g.indptr, g2.indptr)
        np.testing.assert_array_equal(g.indices, g2.indices)
        np.testing.assert_allclose(g.weights, g2.weights)

    def test_malformed_file(self, tmp_path):
        import numpy as np
        from repro.errors import GraphFormatError
        path = tmp_path / "bad.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(GraphFormatError, match="malformed"):
            load_npz(path)


class TestStats:
    def test_compute_stats(self):
        g = path_graph(4)
        s = compute_stats("p4", g)
        assert s.n_nodes == 4
        assert s.n_edges == 3
        assert s.max_degree == 2
        assert s.avg_degree == pytest.approx(1.5)
        assert s.isolated_nodes == 0

    def test_table1_rows(self):
        rows = table1_rows({"a": path_graph(3), "b": star_graph(4)})
        assert [r["Name"] for r in rows] == ["a", "b"]
        assert rows[1]["d_max"] == 4

    def test_format_table(self):
        rows = table1_rows({"a": path_graph(3)})
        text = format_table(rows)
        assert "Name" in text and "d_max" in text

    def test_format_empty(self):
        assert "empty" in format_table([])
