"""Tests for GNN extensions: GCN conv, dropout, evaluation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gnn import Adam, Batch, Dropout, GcnConv, ShadowSage, evaluate
from repro.gnn.eval import local_ppr_batch
from repro.gnn.layers import softmax_cross_entropy
from repro.graph import powerlaw_cluster
from repro.partition import MetisLitePartitioner
from repro.storage import build_shards
from tests.test_gnn import numerical_grad


class TestGcnConv:
    def test_gradient_check(self):
        rng = np.random.default_rng(0)
        conv = GcnConv(3, 2, seed=1)
        h = rng.normal(size=(6, 3))
        adj = sp.random(6, 6, density=0.4, random_state=2, format="csr")
        adj = adj + adj.T  # symmetric, as GCN assumes
        adj_norm = GcnConv.normalize_adj(adj)
        target = rng.normal(size=(6, 2))

        def loss_fn():
            return float(((conv.forward(h, adj_norm) - target) ** 2).sum())

        out = conv.forward(h, adj_norm)
        for p in conv.parameters():
            p.zero_grad()
        conv.backward(2 * (out - target))
        for p in conv.parameters():
            num = numerical_grad(loss_fn, p)
            np.testing.assert_allclose(p.grad, num, rtol=1e-5, atol=1e-7)

    def test_normalization_symmetric_with_self_loops(self):
        adj = sp.csr_matrix(np.array([[0, 1.0], [1.0, 0]]))
        norm = GcnConv.normalize_adj(adj).toarray()
        np.testing.assert_allclose(norm, norm.T)
        assert norm[0, 0] > 0  # self-loop present

    def test_model_with_gcn_learns(self):
        rng = np.random.default_rng(3)
        model = ShadowSage(6, 16, 3, conv="gcn", seed=4)
        adj = sp.random(10, 10, density=0.3, random_state=4, format="csr")
        batch = Batch(
            x=rng.normal(size=(10, 6)), adj=adj,
            ego_idx=np.array([0, 4, 8]), y=np.array([0, 1, 2]),
            global_ids=np.arange(10),
        )
        opt = Adam(model.parameters(), lr=5e-2)
        first = None
        for _ in range(50):
            model.zero_grad()
            loss, _ = model.loss_and_grad(batch)
            first = loss if first is None else first
            opt.step()
        assert loss < first / 5

    def test_invalid_conv_type(self):
        with pytest.raises(ValueError, match="conv"):
            ShadowSage(4, 4, 2, conv="gat")


class TestDropout:
    def test_identity_in_eval_mode(self):
        d = Dropout(0.5, seed=0)
        d.training = False
        x = np.ones((4, 4))
        np.testing.assert_array_equal(d.forward(x), x)

    def test_preserves_expectation(self):
        d = Dropout(0.5, seed=1)
        x = np.ones((200, 200))
        out = d.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self):
        d = Dropout(0.5, seed=2)
        x = np.ones((10, 10))
        out = d.forward(x)
        grad = d.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, out)

    def test_zero_rate_is_identity(self):
        d = Dropout(0.0)
        x = np.random.default_rng(3).normal(size=(5, 5))
        np.testing.assert_array_equal(d.forward(x), x)
        np.testing.assert_array_equal(d.backward(x), x)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_model_train_mode_toggle(self):
        model = ShadowSage(4, 8, 2, dropout=0.5, seed=5)
        model.train_mode(False)
        assert all(not d.training for d in model.dropouts)
        model.train_mode(True)
        assert all(d.training for d in model.dropouts)

    def test_inference_deterministic_with_dropout_off(self):
        rng = np.random.default_rng(6)
        model = ShadowSage(4, 8, 2, dropout=0.5, seed=6)
        adj = sp.random(8, 8, density=0.3, random_state=6, format="csr")
        batch = Batch(x=rng.normal(size=(8, 4)), adj=adj,
                      ego_idx=np.array([0]), y=np.array([0]),
                      global_ids=np.arange(8))
        model.train_mode(False)
        a = model.forward(batch)
        b = model.forward(batch)
        np.testing.assert_array_equal(a, b)


class TestEvaluate:
    @pytest.fixture(scope="class")
    def task(self):
        from repro.gnn import community_task
        g = powerlaw_cluster(800, 8, mixing=0.08, n_communities=4, seed=7)
        feats, labels = community_task(800, 4, 8, noise=0.3, seed=8)
        sharded = build_shards(
            g, MetisLitePartitioner(seed=0).partition(g, 2)
        )
        return g, feats, labels, sharded

    def test_local_ppr_batch_shape(self, task):
        g, feats, labels, sharded = task
        egos = np.array([1, 100, 500])
        batch = local_ppr_batch(sharded, feats, labels, egos, topk=16)
        assert batch.n_nodes >= 3
        np.testing.assert_array_equal(batch.global_ids[batch.ego_idx], egos)
        np.testing.assert_array_equal(batch.y, labels[egos])

    def test_untrained_model_near_random(self, task):
        g, feats, labels, sharded = task
        model = ShadowSage(8, 16, 4, seed=9)
        rng = np.random.default_rng(10)
        egos = rng.choice(800, size=40, replace=False)
        report = evaluate(model, sharded, feats, labels, egos, topk=16)
        assert 0.0 <= report["accuracy"] <= 1.0
        assert report["n_egos"] == 40

    def test_trained_model_beats_untrained(self, task):
        g, feats, labels, sharded = task
        rng = np.random.default_rng(11)
        train_egos = rng.choice(800, size=48, replace=False)
        val_egos = rng.choice(800, size=40, replace=False)

        model = ShadowSage(8, 16, 4, seed=12)
        before = evaluate(model, sharded, feats, labels, val_egos,
                          topk=16)["accuracy"]
        opt = Adam(model.parameters(), lr=2e-2)
        for _ in range(6):
            for start in range(0, len(train_egos), 8):
                chunk = train_egos[start:start + 8]
                batch = local_ppr_batch(sharded, feats, labels, chunk,
                                        topk=16)
                model.zero_grad()
                model.loss_and_grad(batch)
                opt.step()
        after = evaluate(model, sharded, feats, labels, val_egos,
                         topk=16)["accuracy"]
        assert after > before
        assert after > 0.5  # well above the 0.25 random baseline

    def test_eval_restores_training_mode(self, task):
        g, feats, labels, sharded = task
        model = ShadowSage(8, 8, 4, dropout=0.3, seed=13)
        evaluate(model, sharded, feats, labels, np.array([1, 2]), topk=8)
        assert all(d.training for d in model.dropouts)
