"""Tests for the 2-hop halo cache (build, dispatch, correctness)."""

import numpy as np
import pytest

from repro import EngineConfig, GraphEngine, PPRParams, RunRequest
from repro.errors import ShardError
from repro.graph import powerlaw_cluster
from repro.partition import HashPartitioner, MetisLitePartitioner
from repro.ppr import forward_push_parallel
from repro.storage import build_shards

PARAMS = PPRParams()


class TestBuild:
    def test_halo_hops_validation(self):
        g = powerlaw_cluster(100, 4, seed=0)
        res = HashPartitioner().partition(g, 2)
        with pytest.raises(ShardError, match="halo_hops"):
            build_shards(g, res, halo_hops=3)

    def test_default_has_no_cache(self):
        g = powerlaw_cluster(100, 4, seed=0)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        assert not sharded.shards[0].has_halo_cache

    def test_cache_installed_at_two_hops(self):
        g = powerlaw_cluster(100, 4, seed=0)
        sharded = build_shards(g, HashPartitioner().partition(g, 2),
                               halo_hops=2)
        for shard in sharded.shards:
            assert shard.has_halo_cache

    def test_cache_increases_memory(self):
        g = powerlaw_cluster(300, 6, seed=1)
        res = HashPartitioner().partition(g, 2)
        m1 = build_shards(g, res).total_memory_nbytes()
        m2 = build_shards(g, res, halo_hops=2).total_memory_nbytes()
        assert m2 > m1

    def test_cached_rows_match_owner_rows(self):
        """A cached halo row must equal the row the owner shard serves."""
        g = powerlaw_cluster(300, 6, seed=2)
        sharded = build_shards(
            g, MetisLitePartitioner(seed=0).partition(g, 3), halo_hops=2
        )
        shard0 = sharded.shards[0]
        halos = shard0.halo_globals()[:10]
        local, owner = sharded.address_of(halos)
        for gid, lid, own in zip(halos, local, owner):
            cached = shard0.get_cached_batch(int(own),
                                             np.array([lid]))
            authoritative = sharded.shards[own].get_neighbor_batch(
                np.array([lid])
            )
            for a, b in zip(cached.to_arrays(), authoritative.to_arrays()):
                np.testing.assert_array_equal(a, b)

    def test_cache_covers(self):
        g = powerlaw_cluster(200, 5, seed=3)
        sharded = build_shards(g, HashPartitioner().partition(g, 2),
                               halo_hops=2)
        shard0 = sharded.shards[0]
        halos = shard0.halo_globals()
        local, owner = sharded.address_of(halos)
        own1 = owner == 1
        assert shard0.cache_covers(1, local[own1][:5])
        # a core node of shard 1 that is NOT shard 0's halo
        non_halo = np.setdiff1d(sharded.shards[1].core_global, halos)
        if len(non_halo):
            lid, _ = sharded.address_of(non_halo[:1])
            assert not shard0.cache_covers(1, lid)

    def test_cache_miss_raises(self):
        g = powerlaw_cluster(200, 5, seed=4)
        sharded = build_shards(g, HashPartitioner().partition(g, 2),
                               halo_hops=2)
        shard0 = sharded.shards[0]
        halos = shard0.halo_globals()
        non_halo = np.setdiff1d(sharded.shards[1].core_global, halos)
        if len(non_halo) == 0:
            pytest.skip("all of shard 1 is halo for shard 0")
        lid, _ = sharded.address_of(non_halo[:1])
        with pytest.raises(ShardError, match="halo cache miss"):
            shard0.get_cached_batch(1, lid)

    def test_no_cache_raises(self):
        g = powerlaw_cluster(100, 4, seed=5)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        with pytest.raises(ShardError, match="no halo cache"):
            sharded.shards[0].get_cached_batch(1, np.array([0]))


class TestEngineWithCache:
    def test_results_identical_to_uncached(self):
        g = powerlaw_cluster(500, 8, mixing=0.2, seed=6)
        e1 = GraphEngine(g, EngineConfig(n_machines=3, halo_hops=1, seed=0))
        e2 = GraphEngine(g, EngineConfig(n_machines=3, halo_hops=2, seed=0))
        r1 = e1.run(RunRequest(n_queries=6, keep_states=True, seed=7))
        r2 = e2.run(RunRequest(sources=np.array(sorted(r1.states)),
                            keep_states=True, seed=7))
        bound = 2 * PARAMS.epsilon * g.weighted_degrees.sum()
        for gid in r1.states:
            ref, _, _ = forward_push_parallel(g, gid, PARAMS)
            d2 = r2.states[gid].dense_result(e2.sharded, g.n_nodes)
            assert np.abs(d2 - ref).sum() <= bound

    def test_reduces_remote_requests(self):
        g = powerlaw_cluster(500, 8, mixing=0.3, seed=8)
        e1 = GraphEngine(g, EngineConfig(n_machines=3, halo_hops=1, seed=0))
        e2 = GraphEngine(g, EngineConfig(n_machines=3, halo_hops=2, seed=0))
        r1 = e1.run(RunRequest(n_queries=8, seed=9))
        r2 = e2.run(RunRequest(n_queries=8, seed=9))
        assert r2.remote_requests < r1.remote_requests

    def test_config_validation(self):
        with pytest.raises(ValueError, match="halo_hops"):
            EngineConfig(halo_hops=3)
