"""The unified observability layer: registry, spans, exporters, wiring.

Covers the ``repro.obs`` instruments in isolation (process-safety, the
percentile edge cases), the span tracer's nesting and RPC client/server
linking, the Chrome ``trace_event`` exporter, and the end-to-end wiring:
a traced engine run whose ``metrics`` snapshot agrees with the legacy
counters, the ``crashed`` breakdown phase, and the ``repro.cli profile``
acceptance path.
"""

import json
import threading

import numpy as np
import pytest

from repro import EngineConfig, GraphEngine, PPRParams, RunRequest
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Obs,
    SpanTracer,
    chrome_trace,
    text_table,
)
from repro.graph import powerlaw_cluster
from repro.rpc import RetryPolicy
from repro.simt import CrashWindow, FaultPlan


@pytest.fixture(scope="module")
def engine():
    graph = powerlaw_cluster(600, 6, mixing=0.2, seed=2)
    return GraphEngine(graph, EngineConfig(n_machines=2))


class TestMetricsRegistry:
    def test_counter_gauge_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.set("g", 2.5)
        assert reg.counter("a").value == 5
        assert reg.gauge("g").value == 2.5
        assert reg.counters() == {"a": 5}

    def test_negative_inc_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="negative"):
            reg.inc("a", -1)

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.histogram("x")

    def test_histogram_empty_and_single_sample(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert h.percentile(50) == 0.0
        assert h.percentile(99) == 0.0
        h.observe(3e-4)
        # one sample: every percentile is that sample (clamped to max)
        assert h.percentile(0) == pytest.approx(3e-4)
        assert h.percentile(50) == pytest.approx(3e-4)
        assert h.percentile(100) == pytest.approx(3e-4)

    def test_histogram_percentiles_bracket_samples(self):
        h = Histogram("lat", threading.Lock())
        values = [1e-5 * (i + 1) for i in range(100)]
        for v in values:
            h.observe(v)
        assert h.count == 100
        assert h.sum == pytest.approx(sum(values))
        p50, p99 = h.percentile(50), h.percentile(99)
        assert min(values) <= p50 <= p99 <= max(values)
        # ranks: p50 covers >= half the samples, p99 nearly all
        assert sum(v <= p50 for v in values) >= 50
        assert sum(v <= p99 for v in values) >= 90

    def test_histogram_overflow_reports_max(self):
        h = Histogram("lat", threading.Lock(), buckets=(1.0,))
        h.observe(5.0)
        h.observe(7.0)
        assert h.overflow == 2
        assert h.percentile(99) == 7.0

    def test_snapshot_expands_histograms(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.observe("h", 0.5)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["h.count"] == 1
        assert snap["h.p50"] == pytest.approx(0.5)
        assert snap["h.max"] == 0.5

    def test_merge_folds_all_kinds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        b.set("g", 1.5)
        a.observe("h", 0.1)
        b.observe("h", 0.2)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 1.5
        assert a.histogram("h").count == 2

    def test_thread_hammer(self):
        reg = MetricsRegistry()
        n_threads, n_iters = 8, 2000

        def work():
            for _ in range(n_iters):
                reg.inc("hits")
                reg.observe("lat", 1e-4)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits").value == n_threads * n_iters
        assert reg.histogram("lat").count == n_threads * n_iters

    def test_text_table_renders_all_keys(self):
        reg = MetricsRegistry()
        reg.inc("rpc.calls", 7)
        reg.set("makespan", 0.25)
        out = text_table(reg.snapshot(), title="run")
        assert out.startswith("run:")
        assert "rpc.calls" in out and "7" in out
        assert text_table({}) == "metrics: (empty)"


class TestSpanTracer:
    def test_nesting_assigns_parents(self):
        tracer = SpanTracer()
        clock = {"t": 0.0}

        def now():
            clock["t"] += 1.0
            return clock["t"]

        with tracer.span("p0", "outer", now):
            with tracer.span("p0", "inner", now):
                pass
        outer = tracer.by_name("outer")[0]
        inner = tracer.by_name("inner")[0]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.start < inner.start < inner.end < outer.end

    def test_stacks_are_per_process(self):
        tracer = SpanTracer()
        with tracer.span("a", "sa", lambda: 0.0):
            with tracer.span("b", "sb", lambda: 0.0):
                pass
        assert tracer.by_name("sb")[0].parent_id is None

    def test_record_with_reserved_id_and_link(self):
        tracer = SpanTracer()
        client_id = tracer.next_id()
        tracer.record("rpc:m", "caller", 0.0, 1.0, span_id=client_id,
                      kind="client")
        tracer.record("serve:m", "owner", 0.4, 0.6, kind="server",
                      link=client_id)
        (server,) = tracer.by_kind("server")
        assert server.link == client_id
        assert tracer.by_kind("client")[0].span_id == client_id


class TestChromeExport:
    def _tracer(self):
        tracer = SpanTracer()
        cid = tracer.next_id()
        tracer.record("rpc:get", "compute:0.0", 0.0, 1.0, span_id=cid,
                      kind="client")
        tracer.record("serve:get", "server:1", 0.3, 0.7, kind="server",
                      link=cid)
        tracer.record("push", "compute:0.0", 1.0, 1.5)
        return tracer, cid

    def test_complete_events_and_metadata(self):
        tracer, _ = self._tracer()
        doc = chrome_trace(tracer, {"compute:0.0": 0, "server:1": 1})
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 3
        by_name = {e["name"]: e for e in xs}
        assert by_name["rpc:get"]["pid"] == 0
        assert by_name["serve:get"]["pid"] == 1
        assert by_name["rpc:get"]["ts"] == 0.0
        assert by_name["rpc:get"]["dur"] == pytest.approx(1e6)
        thread_names = {e["args"]["name"]
                        for e in doc["traceEvents"]
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert thread_names == {"compute:0.0", "server:1"}

    def test_flow_events_link_client_to_server(self):
        tracer, cid = self._tracer()
        doc = chrome_trace(tracer)
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"] == cid
        # the arrow leaves at the client's start, lands at the server's start
        assert starts[0]["ts"] == 0.0
        assert finishes[0]["ts"] == pytest.approx(0.3e6)


class TestCoalescedFlow:
    """Flow arrows for piggybacked fetches.

    A coalesced fetch never issues its own RPC — it awaits another
    caller's in-flight future — so without the zero-width marker span
    the late requester's timeline would show a wait with no incoming
    arrow.  The exporter draws a dedicated ``coalesce`` flow from the
    origin client span to the marker.
    """

    def _tracer(self):
        tracer = SpanTracer()
        cid = tracer.next_id()
        tracer.record("rpc.fetch_rows", "compute:0.0", 0.0, 1.0,
                      span_id=cid, kind="client")
        tracer.record("fetch_rows", "server:1", 0.3, 0.7, kind="server",
                      link=cid)
        # a second worker joined the same flight later: zero-width marker
        mid = tracer.record("fetch.coalesced", "compute:0.1", 0.4, 0.4,
                            kind="coalesce", link=cid,
                            attrs={"shard": 1, "rows": 3})
        return tracer, cid, mid

    def test_marker_gets_its_own_flow_arrow(self):
        tracer, cid, mid = self._tracer()
        doc = chrome_trace(tracer, {"compute:0.0": 0, "compute:0.1": 0,
                                    "server:1": 1})
        starts = {e["id"]: e for e in doc["traceEvents"] if e["ph"] == "s"}
        finishes = {e["id"]: e for e in doc["traceEvents"]
                    if e["ph"] == "f"}
        assert set(starts) == set(finishes) == {cid, mid}
        # the coalesce arrow leaves the origin client span's start...
        assert starts[mid]["cat"] == "coalesce"
        assert starts[mid]["ts"] == 0.0
        assert starts[mid]["tid"] != finishes[mid]["tid"]
        # ...and lands on the late requester's marker, forward in time
        assert finishes[mid]["ts"] == pytest.approx(0.4e6)
        assert finishes[mid]["ts"] >= starts[mid]["ts"]
        # the rpc arrow is untouched
        assert starts[cid]["cat"] == "rpc"

    def test_unlinked_marker_draws_no_arrow(self):
        tracer = SpanTracer()
        tracer.record("fetch.coalesced", "compute:0.1", 0.4, 0.4,
                      kind="coalesce", link=777)  # origin span not traced
        doc = chrome_trace(tracer)
        assert not [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]

    def test_traced_engine_run_records_linked_markers(self):
        """Regression: coalesced fetches used to dangle — the requester
        awaited a flight whose only trace presence was the *origin*
        worker's client span."""
        graph = powerlaw_cluster(400, 6, mixing=0.3, seed=7)
        eng = GraphEngine(graph, EngineConfig(
            n_machines=2, procs_per_machine=2, halo_hops=2))
        run = eng.run(RunRequest(n_queries=12, seed=5, trace=True))
        assert run.metrics.get("fetch.coalesced", 0) > 0
        tracer = run.obs.tracer
        markers = tracer.by_kind("coalesce")
        assert markers
        client_ids = {s.span_id for s in tracer.by_kind("client")}
        for m in markers:
            assert m.name == "fetch.coalesced"
            assert m.duration == 0.0
            assert m.link in client_ids
            assert m.attrs["rows"] > 0
        # markers never masquerade as RPC traffic: client-span count is
        # still exactly the remote-request count
        assert len(tracer.by_kind("client")) == run.remote_requests


class TestEngineWiring:
    def test_metrics_agree_with_legacy_counters(self, engine):
        run = engine.run(RunRequest(n_queries=6, seed=3))
        m = run.metrics
        assert m["rpc.calls_remote"] == run.remote_requests
        assert m["rpc.calls_local"] == run.local_calls
        assert m["rpc.calls"] == run.remote_requests + run.local_calls
        assert m["engine.queries"] == run.n_queries
        assert m["rpc.request_bytes"] > 0
        assert m["rpc.response_bytes"] > 0
        assert m["rpc.latency.count"] == run.remote_requests
        assert 0 < m["rpc.latency.p50"] <= m["rpc.latency.p99"]

    def test_fault_counters_mirrored_into_registry(self, engine):
        run = engine.run(RunRequest(
            n_queries=6, fault_plan=FaultPlan(seed=9, drop_prob=0.2),
            retry_policy=RetryPolicy(max_attempts=8),
        ))
        m = run.metrics
        assert run.retries > 0
        assert m["rpc.retries"] == run.retries
        assert m["rpc.timeouts"] == run.timeouts
        assert m["rpc.dropped_messages"] == run.dropped_messages
        assert m["rpc.faults.drop"] == run.dropped_messages

    def test_untraced_run_records_no_spans(self, engine):
        run = engine.run(RunRequest(n_queries=2))
        assert run.obs.tracer is None
        assert "rpc.calls" in run.metrics  # metrics are always on

    def test_traced_run_links_every_server_span(self, engine):
        run = engine.run(RunRequest(n_queries=6, seed=3, trace=True))
        tracer = run.obs.tracer
        clients = tracer.by_kind("client")
        servers = tracer.by_kind("server")
        assert len(clients) == run.remote_requests
        assert len(servers) == len(clients)
        client_ids = {s.span_id for s in clients}
        assert all(s.link in client_ids for s in servers)
        # per-query spans, one per source, parented over pop/push/fetch
        assert len(tracer.by_name("query")) == run.n_queries
        query_ids = {s.span_id for s in tracer.by_name("query")}
        assert any(s.parent_id in query_ids for s in tracer.by_name("push"))
        assert all(s.end >= s.start for s in tracer.spans)

    def test_rpc_tracer_publish_lands_in_snapshot(self, engine):
        run = engine.run(RunRequest(n_queries=3, trace_rpc=True))
        assert run.metrics["rpc.trace.calls_remote"] == run.remote_requests
        assert run.metrics["rpc.trace.calls_total"] == \
            run.remote_requests + run.local_calls


class TestCrashedPhase:
    def test_crash_window_time_lands_in_crashed_phase(self, engine):
        from repro.ppr import DegradationMode

        plan = FaultPlan(seed=1, crashes=(
            CrashWindow(server="server:1", crash_at=0.0),
        ))
        run = engine.run(RunRequest(
            n_queries=6, params=PPRParams(epsilon=1e-5), fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, timeout=0.01),
            degradation=DegradationMode.SKIP_REMOTE,
        ))
        assert run.degraded_queries > 0
        assert run.phases["crashed"] > 0
        # outage time is reattributed, not double counted: wait time blocked
        # on the dead server moved out of remote_fetch into crashed

    def test_phases_conserve_total_time(self, engine):
        plan = FaultPlan(seed=1, crashes=(
            CrashWindow(server="server:1", crash_at=0.0),
        ))
        from repro.ppr import DegradationMode
        from repro.engine.cluster import SimCluster
        from repro.engine.query import assign_queries, multi_query_driver, \
            sample_sources
        from repro.engine.engine import _late_proc
        from repro.ppr.distributed import OptLevel
        from repro.storage import DistGraphStorage

        cfg = engine.config
        cluster = SimCluster(engine.sharded, cfg, fault_plan=plan,
                             retry_policy=RetryPolicy(max_attempts=2,
                                                      timeout=0.01))
        sources = sample_sources(engine.sharded, 6, seed=0)
        for (m, p), chunk in assign_queries(engine.sharded, sources,
                                            cfg.procs_per_machine).items():
            name = cfg.worker_name(m, p)
            g = DistGraphStorage(cluster.rrefs, m, name, compress=True)
            cluster.spawn_compute(m, p, multi_query_driver(
                g, _late_proc(cluster, name), chunk, engine.sharded,
                PPRParams(epsilon=1e-5), opt=OptLevel.OVERLAP,
                degradation=DegradationMode.SKIP_REMOTE,
            ))
        cluster.run()
        from repro.engine.breakdown import aggregate_breakdowns

        procs = cluster.compute_processes()
        phases = aggregate_breakdowns([p.breakdown for p in procs])
        assert phases["crashed"] > 0
        total_breakdown = sum(sum(p.breakdown.seconds.values())
                              for p in procs)
        assert sum(phases.values()) == pytest.approx(total_breakdown)

    def test_healthy_run_has_zero_crashed_phase(self, engine):
        run = engine.run(RunRequest(n_queries=2))
        assert run.phases["crashed"] == 0.0


class TestSpanCap:
    def test_cap_drops_and_counts(self):
        tracer = SpanTracer(max_spans=3)
        for i in range(5):
            tracer.record(f"s{i}", "p", float(i), float(i) + 0.5)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        # earliest spans are kept — the start of a run is the useful part
        assert [s.name for s in tracer.spans] == ["s0", "s1", "s2"]

    def test_dropped_spans_surface_as_metric(self):
        obs = Obs.create(trace=True, max_spans=2)
        for i in range(4):
            obs.tracer.record(f"s{i}", "p", 0.0, 1.0)
        assert obs.tracer.dropped == 2
        assert obs.metrics.snapshot()["obs.spans_dropped"] == 2

    def test_uncapped_when_none(self):
        tracer = SpanTracer(max_spans=None)
        for i in range(10):
            tracer.record("s", "p", 0.0, 1.0)
        assert len(tracer) == 10 and tracer.dropped == 0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(max_spans=0)

    def test_capped_traced_run_still_reports(self, engine):
        run = engine.run(RunRequest(n_queries=4, seed=1, trace=True,
                                    max_spans=8))
        assert len(run.obs.tracer) == 8
        assert run.obs.tracer.dropped > 0
        assert run.metrics["obs.spans_dropped"] == run.obs.tracer.dropped


class TestChromeTraceSchema:
    """The trace_event contract a real traced run must satisfy."""

    @pytest.fixture(scope="class")
    def doc(self, engine):
        run = engine.run(RunRequest(n_queries=5, seed=4, trace=True,
                                    trace_rpc=True))
        return chrome_trace(run.obs.tracer)

    def test_required_keys_per_event(self, doc):
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        for e in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(e), e
            if e["ph"] != "M":  # metadata events carry no timestamp
                assert "ts" in e and e["ts"] >= 0
            if e["ph"] == "X":
                assert "dur" in e and e["dur"] >= 0

    def test_metadata_precedes_events(self, doc):
        phases = [e["ph"] for e in doc["traceEvents"]]
        last_meta = max(i for i, p in enumerate(phases) if p == "M")
        first_event = min(i for i, p in enumerate(phases) if p != "M")
        assert last_meta < first_event

    def test_ts_monotone_per_track(self, doc):
        tracks = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                tracks.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
        assert tracks
        for ts in tracks.values():
            assert ts == sorted(ts)

    def test_flow_ids_pair_client_to_server(self, doc):
        events = doc["traceEvents"]
        start_ids = sorted(e["id"] for e in events if e["ph"] == "s")
        finish_ids = sorted(e["id"] for e in events if e["ph"] == "f")
        assert start_ids and start_ids == finish_ids
        client_ids = {e["args"]["span_id"] for e in events
                      if e["ph"] == "X" and e.get("cat") == "client"}
        coalesce_ids = {e["args"]["span_id"] for e in events
                        if e["ph"] == "X" and e.get("cat") == "coalesce"}
        assert set(start_ids) <= client_ids | coalesce_ids


class TestCliProfile:
    def test_profile_writes_linked_chrome_trace(self, tmp_path):
        """Acceptance: a 2-machine profile emits RPC-linked Chrome JSON."""
        from repro.cli import main

        out = tmp_path / "trace.json"
        rc = main(["profile", "products", "--scale", "0.02",
                   "--machines", "2", "--queries", "4",
                   "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        clients = [e for e in events
                   if e["ph"] == "X" and e.get("cat") == "client"]
        servers = [e for e in events
                   if e["ph"] == "X" and e.get("cat") == "server"]
        assert clients and servers
        client_ids = {e["args"]["span_id"] for e in clients}
        assert all(e["args"]["link"] in client_ids for e in servers)
        # flow arrows present and machine pids distinct
        assert any(e["ph"] == "s" for e in events)
        assert any(e["ph"] == "f" for e in events)
        assert {e["pid"] for e in events if e["ph"] == "X"} == {0, 1}

    def test_profile_format_stats_emits_json(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["profile", "products", "--scale", "0.02",
                   "--machines", "2", "--queries", "2",
                   "--format", "stats",
                   "--out", str(tmp_path / "unused.json")])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_queries"] == 2
        assert "rpc.calls" in doc["metrics"]
        assert "remote_fetch" in doc["phases"]
        assert not (tmp_path / "unused.json").exists()  # no trace written

    def test_profile_format_table_skips_trace(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["profile", "products", "--scale", "0.02",
                   "--machines", "2", "--queries", "2",
                   "--format", "table",
                   "--out", str(tmp_path / "unused.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "metrics:" in out and "phases:" in out
        assert not (tmp_path / "unused.json").exists()


class TestObsBundle:
    def test_create_toggles_tracer(self):
        assert Obs.create(trace=False).tracer is None
        assert Obs.create(trace=True).tracer is not None

    def test_engine_queries_sum_across_runs_is_per_run(self, engine):
        a = engine.run(RunRequest(n_queries=2))
        b = engine.run(RunRequest(n_queries=3))
        # a fresh registry per run: counts never leak across deployments
        assert a.metrics["engine.queries"] == 2
        assert b.metrics["engine.queries"] == 3
