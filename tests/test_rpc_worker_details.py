"""Focused tests for RPC server semantics and WorkerInfo validation."""

import time

import numpy as np
import pytest

from repro.errors import RpcError
from repro.rpc import RpcContext
from repro.rpc.worker import RpcServer, WorkerInfo
from repro.simt import NetworkModel, Scheduler, Wait, WaitAll


class TestWorkerInfo:
    def test_valid(self):
        info = WorkerInfo("server:0", 0)
        assert info.name == "server:0"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            WorkerInfo("", 0)

    def test_negative_machine_rejected(self):
        with pytest.raises(ValueError):
            WorkerInfo("x", -1)

    def test_frozen(self):
        info = WorkerInfo("x", 0)
        with pytest.raises(Exception):
            info.name = "y"


class TestRpcServerDirect:
    def make_server(self):
        sched = Scheduler()
        proc = sched.add_passive("server")
        return RpcServer(WorkerInfo("server", 0), proc)

    def test_put_get_object(self):
        server = self.make_server()
        obj = object()
        server.put_object("thing", obj)
        assert server.get_object("thing") is obj

    def test_duplicate_key(self):
        server = self.make_server()
        server.put_object("k", 1)
        with pytest.raises(RpcError, match="already exists"):
            server.put_object("k", 2)

    def test_missing_object(self):
        server = self.make_server()
        with pytest.raises(RpcError, match="hosts no object"):
            server.get_object("ghost")

    def test_resolve_non_callable(self):
        class Obj:
            attr = 42

        server = self.make_server()
        server.put_object("o", Obj())
        with pytest.raises(RpcError, match="no method"):
            server.resolve_method("o", "attr")
        with pytest.raises(RpcError, match="no method"):
            server.resolve_method("o", "nothing")

    def test_fifo_horizon_advances(self):
        class Work:
            def spin(self):
                start = time.perf_counter()
                while time.perf_counter() - start < 0.002:
                    pass
                return True

        server = self.make_server()
        server.put_object("w", Work())
        _r1, s1, e1 = server.serve(0.0, "w", "spin", (), {})
        assert e1 > s1 >= 0.0
        # arrival before the previous service end queues behind it
        _r2, s2, _e2 = server.serve(e1 / 2, "w", "spin", (), {})
        assert s2 == pytest.approx(e1)
        # arrival after an idle gap starts at its arrival time
        _r3, s3, _e3 = server.serve(100.0, "w", "spin", (), {})
        assert s3 == pytest.approx(100.0)
        assert server.requests_served == 3

    def test_serve_charges_server_clock(self):
        class Work:
            def nop(self):
                return 1

        server = self.make_server()
        server.put_object("w", Work())
        before = server.process.clock
        server.serve(0.0, "w", "nop", (), {})
        assert server.process.clock >= before
        assert server.process.breakdown.get("serve") > 0.0


class TestWaitAllOverRpc:
    def test_wait_all_gathers_multiple_servers(self):
        class Echo:
            def __init__(self, tag):
                self.tag = tag

            def get(self):
                return self.tag

        sched = Scheduler()
        ctx = RpcContext(sched, NetworkModel())
        rrefs = []
        for m in range(3):
            ctx.register_server(f"s{m}", m)
            rrefs.append(ctx.create_remote(f"s{m}", "echo", Echo, m))
        out = []

        def body():
            futs = [r.rpc_async("w", "get") for r in rrefs]
            values = yield WaitAll(futs)
            out.append(values)

        proc = sched.spawn("w", body())
        ctx.register_worker("w", 5, proc)
        sched.run()
        assert out == [[0, 1, 2]]

    def test_parallel_futures_cheaper_than_serial_waits(self):
        """Issuing all requests before waiting overlaps their latencies."""

        class Echo:
            def get(self):
                return 1

        net = NetworkModel(rpc_overhead=0.0, tensor_wrap_cost=0.0,
                           bandwidth=1e18, latency=1.0,
                           local_call_overhead=0.0)

        def run(mode):
            sched = Scheduler()
            ctx = RpcContext(sched, net)
            rrefs = []
            for m in range(3):
                ctx.register_server(f"s{m}", m)
                rrefs.append(ctx.create_remote(f"s{m}", "echo", Echo))

            def body():
                if mode == "parallel":
                    futs = [r.rpc_async("w", "get") for r in rrefs]
                    yield WaitAll(futs)
                else:
                    for r in rrefs:
                        yield Wait(r.rpc_async("w", "get"))

            proc = sched.spawn("w", body())
            ctx.register_worker("w", 9, proc)
            sched.run()
            return proc.clock

        serial = run("serial")
        parallel = run("parallel")
        # 3 round trips of 2s latency each: ~6s serial vs ~2s overlapped
        assert serial == pytest.approx(6.0, abs=0.2)
        assert parallel == pytest.approx(2.0, abs=0.2)
