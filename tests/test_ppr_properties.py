"""Property-based invariants of Forward Push SSPPR on random graphs.

Hypothesis generates arbitrary small undirected graphs (random edge
lists, including dangling and isolated nodes, duplicate arcs, and
non-uniform weights) and checks the algebraic invariants the paper's
correctness argument rests on:

* mass conservation — ``sum(ppr) + sum(residual) == 1`` at every exit;
* the termination condition — every residual sits below
  ``epsilon * weighted_degree`` when push stops;
* implementation agreement — sequential push, frontier-parallel push,
  and the dense tensor baseline all land within the additive
  ``epsilon * sum(d_w)`` error envelope of each other.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph
from repro.partition import PartitionResult
from repro.ppr import (
    PPRParams,
    forward_push_parallel,
    forward_push_sequential,
    l1_error,
)
from repro.ppr.tensor_ops import DenseSSPPR
from repro.storage import build_shards

PARAMS = PPRParams(alpha=0.462, epsilon=1e-5)


@st.composite
def random_graphs(draw):
    """An arbitrary small undirected graph plus a source node.

    Edge lists may contain self-loops, duplicates, and nodes with no
    edges at all — ``from_edges`` must normalise them and push must
    handle the resulting dangling/isolated nodes.
    """
    n = draw(st.integers(min_value=2, max_value=30))
    n_edges = draw(st.integers(min_value=0, max_value=60))
    node = st.integers(min_value=0, max_value=n - 1)
    src = draw(st.lists(node, min_size=n_edges, max_size=n_edges))
    dst = draw(st.lists(node, min_size=n_edges, max_size=n_edges))
    weighted = draw(st.booleans())
    if weighted:
        weights = draw(st.lists(
            st.floats(min_value=0.1, max_value=4.0,
                      allow_nan=False, allow_infinity=False),
            min_size=n_edges, max_size=n_edges,
        ))
    else:
        weights = None
    source = draw(node)
    return CSRGraph.from_edges(n, src, dst, weights), source


def tensor_reference(graph: CSRGraph, source: int,
                     params: PPRParams) -> np.ndarray:
    """Drive the dense tensor baseline synchronously on one shard."""
    res = PartitionResult(np.zeros(graph.n_nodes, dtype=np.int64), 1)
    sharded = build_shards(graph, res)
    shard = sharded.shards[0]
    m = DenseSSPPR(source, params, graph.n_nodes,
                   sharded.owner_local, sharded.owner_shard)
    m.seed_source_degree(float(graph.weighted_degrees[source]))
    for _ in range(100_000):
        gids, local_ids, _ = m.pop()
        if len(gids) == 0:
            break
        m.push(shard.get_vertex_props(local_ids), gids)
    else:  # pragma: no cover - safety valve
        raise AssertionError("tensor baseline failed to converge")
    assert m.total_mass() == pytest.approx(1.0)
    return m.dense_result()


class TestMassConservation:
    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_sequential(self, case):
        graph, source = case
        ppr, residual, _ = forward_push_sequential(graph, source, PARAMS)
        assert ppr.sum() + residual.sum() == pytest.approx(1.0)
        assert (ppr >= 0).all() and (residual >= -1e-15).all()

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_parallel(self, case):
        graph, source = case
        ppr, residual, _ = forward_push_parallel(graph, source, PARAMS)
        assert ppr.sum() + residual.sum() == pytest.approx(1.0)
        assert (ppr >= 0).all() and (residual >= -1e-15).all()


class TestTerminationResidualBound:
    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_sequential_residuals_below_rmax_times_degree(self, case):
        graph, source = case
        _, residual, _ = forward_push_sequential(graph, source, PARAMS)
        bound = PARAMS.epsilon * graph.weighted_degrees
        assert np.all(residual <= bound + 1e-15)

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_parallel_residuals_below_rmax_times_degree(self, case):
        graph, source = case
        _, residual, _ = forward_push_parallel(graph, source, PARAMS)
        bound = PARAMS.epsilon * graph.weighted_degrees
        assert np.all(residual <= bound + 1e-15)

    @given(random_graphs())
    @settings(max_examples=20, deadline=None)
    def test_dangling_nodes_hold_no_residual(self, case):
        graph, source = case
        _, residual, _ = forward_push_sequential(graph, source, PARAMS)
        dangling = graph.weighted_degrees <= 0.0
        assert residual[dangling].sum() == pytest.approx(0.0)


class TestImplementationAgreement:
    @given(random_graphs())
    @settings(max_examples=25, deadline=None)
    def test_sequential_vs_parallel(self, case):
        graph, source = case
        seq, _, _ = forward_push_sequential(graph, source, PARAMS)
        par, _, _ = forward_push_parallel(graph, source, PARAMS)
        envelope = 2 * PARAMS.epsilon * graph.weighted_degrees.sum()
        assert l1_error(seq, par) <= envelope + 1e-12

    @given(random_graphs())
    @settings(max_examples=15, deadline=None)
    def test_sequential_vs_tensor(self, case):
        graph, source = case
        seq, _, _ = forward_push_sequential(graph, source, PARAMS)
        tensor = tensor_reference(graph, source, PARAMS)
        envelope = 2 * PARAMS.epsilon * graph.weighted_degrees.sum()
        assert l1_error(seq, tensor) <= envelope + 1e-12

    @given(random_graphs())
    @settings(max_examples=15, deadline=None)
    def test_parallel_vs_tensor(self, case):
        graph, source = case
        par, _, _ = forward_push_parallel(graph, source, PARAMS)
        tensor = tensor_reference(graph, source, PARAMS)
        envelope = 2 * PARAMS.epsilon * graph.weighted_degrees.sum()
        assert l1_error(par, tensor) <= envelope + 1e-12
