"""Tests for engine facade BFS/WCC and super-node degree capping."""

import numpy as np
import pytest

from repro import EngineConfig, GraphEngine
from repro.graph import CSRGraph, cap_degrees, powerlaw_cluster, star_graph
from repro.walk import single_machine_bfs, single_machine_wcc


class TestEngineBfs:
    def test_matches_reference(self):
        g = powerlaw_cluster(400, 6, mixing=0.2, seed=0)
        engine = GraphEngine(g, EngineConfig(n_machines=3, seed=0))
        source = 17
        depths, makespan = engine.run_bfs(source)
        np.testing.assert_array_equal(depths, single_machine_bfs(g, source))
        assert makespan > 0

    def test_source_on_any_machine(self):
        g = powerlaw_cluster(300, 6, seed=1)
        engine = GraphEngine(g, EngineConfig(n_machines=2, seed=0))
        for source in (0, 150, 299):
            depths, _ = engine.run_bfs(source)
            assert depths[source] == 0


class TestEngineWcc:
    def test_connected_graph_single_label(self):
        g = powerlaw_cluster(300, 8, seed=2)
        from repro.graph import connected_components
        if connected_components(g)[0] != 1:
            pytest.skip("generator produced fragments")
        engine = GraphEngine(g, EngineConfig(n_machines=3, seed=0))
        labels, _ = engine.run_wcc()
        assert len(np.unique(labels)) == 1

    def test_fragmented_graph(self):
        g = CSRGraph.from_edges(8, [0, 1, 4, 6], [1, 2, 5, 7])
        engine = GraphEngine(g, EngineConfig(n_machines=2, seed=0))
        labels, _ = engine.run_wcc()
        np.testing.assert_array_equal(labels, single_machine_wcc(g))


class TestCapDegrees:
    def test_caps_super_node(self):
        g = star_graph(50)  # center degree 50
        capped = cap_degrees(g, 10, seed=0)
        assert capped.out_degree(0) == 10
        # leaves keep their arc only if the center kept the mirror? No:
        # directed capping keeps leaf->center rows intact.
        assert capped.out_degree(5) == 1

    def test_noop_below_cap(self):
        g = powerlaw_cluster(100, 4, seed=3)
        cap = int(g.out_degree().max())
        assert cap_degrees(g, cap, seed=0) is g

    def test_kept_arcs_subset(self):
        g = powerlaw_cluster(200, 8, exponent=1.9, seed=4)
        capped = cap_degrees(g, 10, seed=1)
        assert capped.out_degree().max() <= 10
        for v in range(0, 200, 37):
            for u in capped.neighbors(v):
                assert g.has_arc(v, int(u))

    def test_weights_preserved(self):
        g = powerlaw_cluster(100, 6, seed=5)
        capped = cap_degrees(g, 3, seed=2)
        for v in range(0, 100, 17):
            for i, u in enumerate(capped.neighbors(v)):
                s = np.searchsorted(g.neighbors(v), u)
                assert capped.neighbor_weights(v)[i] == pytest.approx(
                    g.neighbor_weights(v)[s]
                )

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            cap_degrees(star_graph(5), 0)
