"""Tests for connected-component utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, erdos_renyi, path_graph
from repro.graph.components import (
    component_sizes,
    connected_components,
    induced_subgraph,
    largest_component,
)


def two_fragments():
    # fragment A: 0-1-2 path; fragment B: 3-4 edge; node 5 isolated
    return CSRGraph.from_edges(6, [0, 1, 3], [1, 2, 4])


class TestComponents:
    def test_counts(self):
        n, labels = connected_components(two_fragments())
        assert n == 3
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[5] not in (labels[0], labels[3])

    def test_sizes_descending(self):
        sizes = component_sizes(two_fragments())
        np.testing.assert_array_equal(sizes, [3, 2, 1])

    def test_connected_graph(self):
        n, _ = connected_components(path_graph(5))
        assert n == 1

    def test_largest_component(self):
        sub, node_map = largest_component(two_fragments())
        assert sub.n_nodes == 3
        np.testing.assert_array_equal(node_map, [0, 1, 2])
        assert sub.has_arc(0, 1) and sub.has_arc(1, 2)

    def test_largest_component_noop_when_connected(self):
        g = path_graph(4)
        sub, node_map = largest_component(g)
        assert sub is g
        np.testing.assert_array_equal(node_map, np.arange(4))


class TestInducedSubgraph:
    def test_relabeling_and_weights(self):
        g = CSRGraph.from_edges(5, [0, 1, 2], [1, 2, 3],
                                [2.0, 3.0, 4.0])
        sub = induced_subgraph(g, np.array([1, 2, 3]))
        assert sub.n_nodes == 3
        # edge 1-2 (w 3) -> 0-1; edge 2-3 (w 4) -> 1-2
        assert sub.has_arc(0, 1) and sub.has_arc(1, 2)
        assert not sub.has_arc(0, 2)
        s, e = sub.indptr[0], sub.indptr[1]
        assert sub.weights[s:e][0] == pytest.approx(3.0)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            induced_subgraph(path_graph(3), np.array([9]))

    def test_empty_selection(self):
        sub = induced_subgraph(path_graph(3), np.array([], dtype=np.int64))
        assert sub.n_nodes == 0

    @given(n=st.integers(10, 60), seed=st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_subgraph_arcs_subset_of_graph(self, n, seed):
        g = erdos_renyi(n, 4, seed=seed)
        rng = np.random.default_rng(seed)
        nodes = np.unique(rng.choice(n, size=n // 2, replace=False))
        sub = induced_subgraph(g, nodes)
        assert sub.n_nodes == len(nodes)
        for i in range(sub.n_nodes):
            for j in sub.neighbors(i):
                assert g.has_arc(int(nodes[i]), int(nodes[j]))

    @given(n=st.integers(10, 60), seed=st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_component_labels_partition_nodes(self, n, seed):
        g = erdos_renyi(n, 2, seed=seed)
        n_comp, labels = connected_components(g)
        assert len(labels) == n
        assert len(np.unique(labels)) == n_comp
        # within a component, edges never leave it
        src = np.repeat(np.arange(n), np.diff(g.indptr))
        if len(src):
            np.testing.assert_array_equal(labels[src], labels[g.indices])
