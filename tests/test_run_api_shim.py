"""The stable ``QueryRunResult`` schema and latency-percentile edges.

``engine.run(RunRequest(...))`` is the one batch entry point (the
deprecated ``run_queries`` shim was removed once serving landed); these
tests pin the result-schema contract — the typed serving counters default
to zero on plain batch runs, convenience wrappers return the same shape —
plus the degenerate ``latency_percentiles`` inputs (0 and 1 samples) that
historically tripped ``np.percentile``.
"""

import numpy as np
import pytest

from repro.engine import EngineConfig, GraphEngine, QueryRunResult, RunRequest
from repro.engine.query import sample_sources
from repro.graph import powerlaw_cluster
from repro.ppr import PPRParams


@pytest.fixture(scope="module")
def engine():
    graph = powerlaw_cluster(400, 6, mixing=0.2, seed=7)
    return GraphEngine(graph, EngineConfig(n_machines=2))


class TestResultSchema:
    def test_shim_is_gone(self, engine):
        assert not hasattr(engine, "run_queries")

    def test_serving_counters_default_zero_on_batch_runs(self, engine):
        run = engine.run(RunRequest(n_queries=3))
        assert isinstance(run, QueryRunResult)
        assert (run.admitted, run.rejected, run.deadline_missed) == (0, 0, 0)

    def test_forwards_all_kwargs(self, engine):
        sources = sample_sources(engine.sharded, 3, seed=5)
        params = PPRParams(epsilon=1e-4)
        run = engine.run(RunRequest(sources=sources, params=params,
                                    keep_states=True, seed=5))
        assert run.n_queries == 3
        assert sorted(run.states) == sorted(sources.tolist())

    def test_wrappers_share_the_run_path(self, engine):
        """Convenience wrappers are pure forwarders over ``run``: same
        deterministic outputs as the equivalent explicit request."""
        sources = sample_sources(engine.sharded, 4, seed=9)
        old = engine.run_queries_batched(sources=sources)
        new = engine.run(RunRequest(sources=sources, mode="batched"))
        assert isinstance(old, QueryRunResult)
        assert old.n_queries == new.n_queries
        assert old.remote_requests == new.remote_requests
        assert old.local_calls == new.local_calls
        assert old.states.keys() == new.states.keys()
        n = engine.graph.n_nodes
        for gid in old.states:
            np.testing.assert_array_equal(
                old.states[gid].dense_result(engine.sharded, n),
                new.states[gid].dense_result(engine.sharded, n),
            )

    def test_sources_win_over_n_queries(self, engine):
        sources = sample_sources(engine.sharded, 2, seed=0)
        run = engine.run(RunRequest(sources=sources))
        assert run.n_queries == 2


class TestLatencyPercentiles:
    def _result(self, latencies):
        return QueryRunResult(
            n_queries=len(latencies), makespan=1.0, throughput=1.0,
            phases={}, per_proc_clocks={}, remote_requests=0, local_calls=0,
            latencies=latencies,
        )

    def test_zero_samples(self):
        out = self._result({}).latency_percentiles()
        assert out == {50.0: 0.0, 90.0: 0.0, 99.0: 0.0}

    def test_one_sample_is_that_sample(self):
        out = self._result({7: 0.125}).latency_percentiles(q=(1, 50, 99.9))
        assert out == {1.0: 0.125, 50.0: 0.125, 99.9: 0.125}

    def test_keys_are_floats_regardless_of_spelling(self):
        out = self._result({1: 0.1, 2: 0.3}).latency_percentiles(q=(50, 95))
        assert set(out) == {50.0, 95.0}
        assert all(isinstance(k, float) for k in out)

    def test_many_samples_are_ordered(self):
        lat = {i: 0.01 * (i + 1) for i in range(20)}
        out = self._result(lat).latency_percentiles(q=(10, 50, 90))
        assert out[10.0] <= out[50.0] <= out[90.0]
        assert min(lat.values()) <= out[10.0]
        assert out[90.0] <= max(lat.values())

    def test_engine_run_populates_latencies(self, engine):
        run = engine.run(RunRequest(n_queries=3))
        assert len(run.latencies) == 3
        pct = run.latency_percentiles()
        assert pct[50.0] > 0
