"""Tests for the Monte-Carlo SSPPR estimator (the third method family)."""

import numpy as np
import pytest

from repro.graph import CSRGraph, path_graph, powerlaw_cluster, star_graph
from repro.ppr import (
    monte_carlo_ssppr,
    monte_carlo_ssppr_unweighted,
    power_iteration_ssppr,
    topk_precision,
)


class TestMonteCarloWeighted:
    def test_sums_to_one(self):
        g = powerlaw_cluster(100, 5, seed=0)
        est = monte_carlo_ssppr(g, 0, n_walks=500, seed=1)
        assert est.sum() == pytest.approx(1.0)

    def test_approaches_ground_truth(self):
        g = powerlaw_cluster(150, 5, seed=2)
        exact = power_iteration_ssppr(g, 3, alpha=0.462)
        est = monte_carlo_ssppr(g, 3, alpha=0.462, n_walks=4000, seed=3)
        # L1 error of a 4000-walk estimate: loose but meaningful bound
        assert np.abs(est - exact).sum() < 0.5
        assert topk_precision(est, exact, 10) >= 0.5

    def test_variance_shrinks_with_walks(self):
        g = powerlaw_cluster(120, 5, seed=4)
        exact = power_iteration_ssppr(g, 0, alpha=0.462)
        err_small = np.abs(
            monte_carlo_ssppr(g, 0, n_walks=200, seed=5) - exact
        ).sum()
        err_big = np.abs(
            monte_carlo_ssppr(g, 0, n_walks=8000, seed=5) - exact
        ).sum()
        assert err_big < err_small

    def test_dangling_source(self):
        g = CSRGraph.from_edges(3, [0], [1])  # node 2 isolated
        est = monte_carlo_ssppr(g, 2, n_walks=100, seed=6)
        assert est[2] == pytest.approx(1.0)

    def test_invalid_args(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            monte_carlo_ssppr(g, 9)
        with pytest.raises(ValueError):
            monte_carlo_ssppr(g, 0, alpha=0.0)
        with pytest.raises(ValueError):
            monte_carlo_ssppr(g, 0, n_walks=0)

    def test_reproducible(self):
        g = powerlaw_cluster(80, 4, seed=7)
        a = monte_carlo_ssppr(g, 0, n_walks=300, seed=8)
        b = monte_carlo_ssppr(g, 0, n_walks=300, seed=8)
        np.testing.assert_array_equal(a, b)


class TestMonteCarloUnweighted:
    def test_sums_to_one(self):
        g = powerlaw_cluster(100, 5, weighted=False, seed=9)
        est = monte_carlo_ssppr_unweighted(g, 0, n_walks=500, seed=10)
        assert est.sum() == pytest.approx(1.0)

    def test_matches_weighted_on_unit_weights(self):
        """On a unit-weight graph both samplers target the same law."""
        g = powerlaw_cluster(120, 5, weighted=False, seed=11)
        exact = power_iteration_ssppr(g, 2, alpha=0.462)
        est_u = monte_carlo_ssppr_unweighted(g, 2, n_walks=6000, seed=12)
        est_w = monte_carlo_ssppr(g, 2, n_walks=6000, seed=12)
        assert np.abs(est_u - exact).sum() < 0.45
        assert np.abs(est_w - exact).sum() < 0.45

    def test_star_concentrates_on_center(self):
        g = star_graph(8)
        est = monte_carlo_ssppr_unweighted(g, 0, alpha=0.5, n_walks=2000,
                                           seed=13)
        assert est[0] > est[1:].max()
