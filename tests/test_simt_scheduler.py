"""Unit tests for the discrete-event virtual-time runtime (repro.simt)."""

import pytest

from repro.errors import SimulationError
from repro.simt import Charge, Scheduler, SimFuture, Sleep, Wait, WaitAll


class TestBasicProcesses:
    def test_single_process_runs_to_completion(self):
        sched = Scheduler()

        def body():
            yield Charge(1.0, "work")
            return "done"

        proc = sched.spawn("p0", body())
        sched.run()
        assert proc.finished
        assert sched.result_of("p0") == "done"
        assert proc.clock == pytest.approx(1.0)
        assert proc.breakdown.get("work") == pytest.approx(1.0)

    def test_sleep_advances_clock(self):
        sched = Scheduler()

        def body():
            yield Sleep(2.5)

        proc = sched.spawn("p0", body())
        sched.run()
        assert proc.clock == pytest.approx(2.5)

    def test_charges_accumulate(self):
        sched = Scheduler()

        def body():
            yield Charge(1.0, "a")
            yield Charge(2.0, "b")
            yield Charge(3.0, "a")

        proc = sched.spawn("p0", body())
        sched.run()
        assert proc.clock == pytest.approx(6.0)
        assert proc.breakdown.get("a") == pytest.approx(4.0)
        assert proc.breakdown.get("b") == pytest.approx(2.0)

    def test_direct_charge_seconds(self):
        sched = Scheduler()

        def body():
            proc.charge_seconds(0.5, "direct")
            yield Sleep(0.0)

        proc = sched.spawn("p0", body())
        sched.run()
        assert proc.clock == pytest.approx(0.5)

    def test_measured_block_advances_clock(self):
        sched = Scheduler()

        def body():
            with proc.measured("real"):
                sum(range(10000))
            yield Sleep(0.0)

        proc = sched.spawn("p0", body())
        sched.run()
        assert proc.clock > 0.0
        assert proc.breakdown.get("real") == pytest.approx(proc.clock)

    def test_duplicate_name_rejected(self):
        sched = Scheduler()

        def body():
            yield Sleep(0)

        sched.spawn("p", body())
        with pytest.raises(SimulationError, match="duplicate"):
            sched.spawn("p", body())

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Charge(-1.0)
        with pytest.raises(ValueError):
            Sleep(-1.0)


class TestFutures:
    def test_wait_on_resolved_future(self):
        sched = Scheduler()
        fut = SimFuture.resolved(42, ready_time=5.0)

        def body():
            value = yield Wait(fut)
            return value

        proc = sched.spawn("p0", body())
        sched.run()
        assert sched.result_of("p0") == 42
        # waiting on a future ready at t=5 pulls the clock forward
        assert proc.clock == pytest.approx(5.0)
        assert proc.breakdown.get("wait") == pytest.approx(5.0)

    def test_wait_does_not_rewind_clock(self):
        sched = Scheduler()
        fut = SimFuture.resolved("x", ready_time=1.0)

        def body():
            yield Charge(10.0, "work")
            yield Wait(fut)

        proc = sched.spawn("p0", body())
        sched.run()
        assert proc.clock == pytest.approx(10.0)
        assert proc.breakdown.get("wait") == pytest.approx(0.0)

    def test_wait_all_resumes_at_latest(self):
        sched = Scheduler()
        futs = [SimFuture.resolved(i, ready_time=float(i)) for i in (1, 3, 2)]

        def body():
            values = yield WaitAll(futs)
            return values

        proc = sched.spawn("p0", body())
        sched.run()
        assert sched.result_of("p0") == [1, 3, 2]
        assert proc.clock == pytest.approx(3.0)

    def test_wait_all_empty(self):
        sched = Scheduler()

        def body():
            values = yield WaitAll([])
            return values

        sched.spawn("p0", body())
        sched.run()
        assert sched.result_of("p0") == []

    def test_future_resolved_by_other_process(self):
        sched = Scheduler()
        fut = SimFuture(tag="handoff")

        def producer():
            yield Sleep(4.0)
            fut.set_result("payload", sched.now)

        def consumer():
            value = yield Wait(fut)
            return value

        sched.spawn("prod", producer())
        cons = sched.spawn("cons", consumer())
        sched.run()
        assert sched.result_of("cons") == "payload"
        assert cons.clock == pytest.approx(4.0)

    def test_future_double_resolve_rejected(self):
        fut = SimFuture()
        fut.set_result(1, 0.0)
        with pytest.raises(SimulationError, match="twice"):
            fut.set_result(2, 0.0)

    def test_future_exception_propagates_to_waiter(self):
        sched = Scheduler()
        fut = SimFuture()
        fut.set_exception(RuntimeError("boom"), 1.0)

        def body():
            try:
                yield Wait(fut)
            except RuntimeError as exc:
                return f"caught {exc}"

        sched.spawn("p0", body())
        sched.run()
        assert sched.result_of("p0") == "caught boom"

    def test_unresolved_future_value_raises(self):
        with pytest.raises(SimulationError, match="not resolved"):
            SimFuture().value()
        with pytest.raises(SimulationError, match="not resolved"):
            _ = SimFuture().ready_time


class TestSchedulerSemantics:
    def test_deadlock_detected(self):
        sched = Scheduler()
        never = SimFuture(tag="never")

        def body():
            yield Wait(never)

        sched.spawn("p0", body())
        with pytest.raises(SimulationError, match="deadlock"):
            sched.run()

    def test_deterministic_interleaving(self):
        def run_once():
            sched = Scheduler()
            order = []

            def mk(name, dts):
                def body():
                    for dt in dts:
                        yield Sleep(dt)
                        order.append((name, sched.now))
                return body

            sched.spawn("a", mk("a", [1.0, 1.0, 1.0])())
            sched.spawn("b", mk("b", [0.5, 1.0, 2.0])())
            sched.run()
            return order

        assert run_once() == run_once()

    def test_makespan(self):
        sched = Scheduler()

        def body(dt):
            yield Sleep(dt)

        sched.spawn("fast", body(1.0))
        sched.spawn("slow", body(7.0))
        sched.run()
        assert sched.makespan() == pytest.approx(7.0)
        assert sched.makespan(["fast"]) == pytest.approx(1.0)

    def test_process_exception_surfaces_via_result(self):
        sched = Scheduler()

        def body():
            yield Sleep(1.0)
            raise ValueError("inner failure")

        sched.spawn("p0", body())
        sched.run()
        with pytest.raises(ValueError, match="inner failure"):
            sched.result_of("p0")

    def test_passive_process_has_no_body(self):
        sched = Scheduler()
        server = sched.add_passive("server")
        sched.run()  # no events; passive procs don't count as deadlocked
        assert server.clock == 0.0

    def test_resolved_future_with_delay(self):
        sched = Scheduler()

        def body():
            fut = sched.resolved_future("v", delay=3.0)
            value = yield Wait(fut)
            return value

        proc = sched.spawn("p0", body())
        sched.run()
        assert sched.result_of("p0") == "v"
        assert proc.clock == pytest.approx(3.0)

    def test_max_events_guard(self):
        sched = Scheduler()

        def body():
            while True:
                yield Sleep(1.0)

        sched.spawn("loop", body())
        with pytest.raises(SimulationError, match="max_events"):
            sched.run(max_events=10)
