"""Tests for the partitioning package (base, quality, all partitioners)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.graph import complete_graph, erdos_renyi, path_graph, powerlaw_cluster
from repro.partition import (
    BfsPartitioner,
    HashPartitioner,
    MetisLitePartitioner,
    PartitionResult,
    RandomPartitioner,
    balance,
    edge_cut_fraction,
    partition_quality,
)
from repro.partition.coarsen import coarsen_to, contract, match_mutual
from repro.partition.refine import connectivity_matrix, refine


class TestPartitionResult:
    def test_basic(self):
        r = PartitionResult(np.array([0, 1, 0, 1]), 2)
        np.testing.assert_array_equal(r.part_sizes(), [2, 2])
        np.testing.assert_array_equal(r.nodes_of(1), [1, 3])
        assert r.nonempty()

    def test_out_of_range_rejected(self):
        with pytest.raises(PartitionError):
            PartitionResult(np.array([0, 2]), 2)
        with pytest.raises(PartitionError):
            PartitionResult(np.array([-1]), 2)

    def test_empty_part_detected(self):
        r = PartitionResult(np.array([0, 0]), 2)
        assert not r.nonempty()

    def test_bad_part_lookup(self):
        r = PartitionResult(np.array([0]), 1)
        with pytest.raises(PartitionError):
            r.nodes_of(5)

    def test_invalid_nparts(self):
        with pytest.raises(PartitionError):
            PartitionResult(np.array([0]), 0)


class TestQualityMetrics:
    def test_edge_cut_all_local(self):
        g = path_graph(4)
        r = PartitionResult(np.zeros(4, dtype=int), 1)
        assert edge_cut_fraction(g, r) == 0.0

    def test_edge_cut_one_edge(self):
        g = path_graph(4)  # arcs: 0-1,1-2,2-3 (x2)
        r = PartitionResult(np.array([0, 0, 1, 1]), 2)
        assert edge_cut_fraction(g, r) == pytest.approx(2 / 6)

    def test_edge_cut_size_mismatch(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="covers"):
            edge_cut_fraction(g, PartitionResult(np.zeros(3, dtype=int), 1))

    def test_balance_perfect(self):
        r = PartitionResult(np.array([0, 1, 0, 1]), 2)
        assert balance(r) == pytest.approx(1.0)

    def test_balance_skewed(self):
        r = PartitionResult(np.array([0, 0, 0, 1]), 2)
        assert balance(r) == pytest.approx(1.5)

    def test_partition_quality_summary(self):
        g = path_graph(4)
        q = partition_quality(g, PartitionResult(np.array([0, 0, 1, 1]), 2))
        assert q.n_parts == 2
        assert q.min_part == 2 and q.max_part == 2


class TestBaselinePartitioners:
    def test_hash_deterministic(self):
        g = path_graph(10)
        r1 = HashPartitioner().partition(g, 3)
        r2 = HashPartitioner().partition(g, 3)
        np.testing.assert_array_equal(r1.assignment, r2.assignment)

    def test_random_balanced(self):
        g = erdos_renyi(300, 4, seed=0)
        r = RandomPartitioner(seed=1).partition(g, 3)
        assert balance(r) == pytest.approx(1.0)
        assert r.nonempty()

    def test_random_reproducible_with_seed(self):
        g = path_graph(20)
        a = RandomPartitioner(seed=9).partition(g, 4).assignment
        b = RandomPartitioner(seed=9).partition(g, 4).assignment
        np.testing.assert_array_equal(a, b)

    def test_too_many_parts_rejected(self):
        g = path_graph(3)
        for p in (RandomPartitioner(), HashPartitioner(), BfsPartitioner(),
                  MetisLitePartitioner()):
            with pytest.raises(PartitionError):
                p.partition(g, 10)

    def test_zero_parts_rejected(self):
        g = path_graph(3)
        with pytest.raises(PartitionError):
            RandomPartitioner().partition(g, 0)


class TestBfsPartitioner:
    def test_two_cliques_separated(self):
        # Two 10-cliques joined by a single edge: the obvious min cut.
        import scipy.sparse as sp
        from repro.graph import CSRGraph
        a = complete_graph(10).to_scipy()
        block = sp.block_diag([a, a]).tolil()
        block[0, 10] = 1.0
        block[10, 0] = 1.0
        g = CSRGraph.from_scipy(block.tocsr())
        r = BfsPartitioner(seed=0).partition(g, 2)
        cut = edge_cut_fraction(g, r)
        assert cut <= 0.05
        assert r.nonempty()

    def test_disconnected_components_assigned(self):
        from repro.graph import CSRGraph
        g = CSRGraph.from_edges(6, [0, 1, 3, 4], [1, 2, 4, 5])
        r = BfsPartitioner(seed=0).partition(g, 2)
        assert r.nonempty()
        assert len(r.assignment) == 6


class TestCoarsening:
    def test_match_mutual_valid_matching(self):
        g = powerlaw_cluster(200, 6, seed=0)
        mate = match_mutual(g)
        matched = np.flatnonzero(mate >= 0)
        # involution: mate[mate[v]] == v
        np.testing.assert_array_equal(mate[mate[matched]], matched)
        # nobody matched to self
        assert np.all(mate[matched] != matched)

    def test_match_shrinks_graph(self):
        g = powerlaw_cluster(500, 8, seed=1)
        mate = match_mutual(g)
        assert np.count_nonzero(mate >= 0) > 0.3 * g.n_nodes

    def test_contract_preserves_total_node_weight(self):
        g = powerlaw_cluster(300, 6, seed=2)
        mate = match_mutual(g)
        level = contract(g, np.ones(g.n_nodes), mate)
        assert level.node_weights.sum() == pytest.approx(g.n_nodes)
        assert level.graph.n_nodes == len(level.node_weights)

    def test_contract_preserves_cut_weight_lower_bound(self):
        """Total edge weight can only shrink (internal edges vanish)."""
        g = powerlaw_cluster(300, 6, seed=3)
        mate = match_mutual(g)
        level = contract(g, np.ones(g.n_nodes), mate)
        assert level.graph.weights.sum() <= g.weights.sum() + 1e-9

    def test_fine_to_coarse_maps_everything(self):
        g = powerlaw_cluster(300, 6, seed=4)
        mate = match_mutual(g)
        level = contract(g, np.ones(g.n_nodes), mate)
        assert len(level.fine_to_coarse) == g.n_nodes
        assert level.fine_to_coarse.max() == level.graph.n_nodes - 1

    def test_coarsen_to_hierarchy(self):
        g = powerlaw_cluster(2000, 8, seed=5)
        levels = coarsen_to(g, 200)
        assert levels[0].graph.n_nodes == 2000
        sizes = [lv.graph.n_nodes for lv in levels]
        assert all(sizes[i] > sizes[i + 1] for i in range(len(sizes) - 1))
        assert sizes[-1] <= 2000  # made progress or stopped cleanly


class TestRefine:
    def test_connectivity_matrix(self):
        g = path_graph(4)
        conn = connectivity_matrix(g, np.array([0, 0, 1, 1]), 2)
        # node 1: one arc to part 0 (node 0), one to part 1 (node 2)
        np.testing.assert_allclose(conn[1], [1.0, 1.0])

    def test_refine_improves_bad_assignment(self):
        import scipy.sparse as sp
        from repro.graph import CSRGraph
        a = complete_graph(8).to_scipy()
        block = sp.block_diag([a, a]).tolil()
        block[0, 8] = 1.0
        block[8, 0] = 1.0
        g = CSRGraph.from_scipy(block.tocsr())
        # interleaved (bad) assignment
        bad = np.arange(16) % 2
        refined = refine(g, bad, np.ones(16), 2)
        before = edge_cut_fraction(g, PartitionResult(bad, 2))
        after = edge_cut_fraction(g, PartitionResult(refined, 2))
        assert after < before

    def test_refine_respects_balance(self):
        g = powerlaw_cluster(400, 6, seed=6)
        assignment = np.arange(400) % 4
        refined = refine(g, assignment, np.ones(400), 4, imbalance=0.1)
        r = PartitionResult(refined, 4)
        assert balance(r) <= 1.1 + 1e-9

    def test_refine_keeps_parts_nonempty(self):
        g = powerlaw_cluster(100, 4, seed=7)
        assignment = np.arange(100) % 4
        refined = refine(g, assignment, np.ones(100), 4)
        assert PartitionResult(refined, 4).nonempty()


class TestMetisLite:
    def test_beats_random_on_clustered_graph(self):
        g = powerlaw_cluster(4000, 12, mixing=0.05, n_communities=16, seed=8)
        ml = MetisLitePartitioner(seed=0).partition(g, 4)
        rnd = RandomPartitioner(seed=0).partition(g, 4)
        assert edge_cut_fraction(g, ml) < 0.5 * edge_cut_fraction(g, rnd)

    def test_balance_constraint(self):
        g = powerlaw_cluster(2000, 8, mixing=0.1, seed=9)
        r = MetisLitePartitioner(imbalance=0.05, seed=0).partition(g, 4)
        assert balance(r) <= 1.35  # modest slack over per-level 1.05 target

    def test_single_part(self):
        g = path_graph(10)
        r = MetisLitePartitioner().partition(g, 1)
        np.testing.assert_array_equal(r.assignment, np.zeros(10))

    def test_all_parts_nonempty(self):
        g = powerlaw_cluster(500, 6, seed=10)
        for k in (2, 3, 5, 8):
            r = MetisLitePartitioner(seed=0).partition(g, k)
            assert r.nonempty(), f"empty part at k={k}"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MetisLitePartitioner(imbalance=-0.1)
        with pytest.raises(ValueError):
            MetisLitePartitioner(coarsest_factor=0)

    def test_deterministic_given_seed(self):
        g = powerlaw_cluster(800, 6, mixing=0.1, seed=11)
        a = MetisLitePartitioner(seed=3).partition(g, 4).assignment
        b = MetisLitePartitioner(seed=3).partition(g, 4).assignment
        np.testing.assert_array_equal(a, b)


class TestPartitionerProperties:
    @given(
        n=st.integers(20, 200),
        k=st.integers(1, 5),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_partitioner_covers_all_nodes(self, n, k, seed):
        g = erdos_renyi(n, 4, seed=seed)
        for part in (RandomPartitioner(seed=seed), HashPartitioner(),
                     BfsPartitioner(seed=seed),
                     MetisLitePartitioner(seed=seed)):
            r = part.partition(g, k)
            assert len(r.assignment) == n
            assert r.assignment.min() >= 0
            assert r.assignment.max() < k
