"""Tests for GraphShard / VertexProp / NeighborBatch / ShardedGraph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShardError
from repro.graph import CSRGraph, erdos_renyi, powerlaw_cluster
from repro.partition import HashPartitioner, MetisLitePartitioner, PartitionResult
from repro.storage import build_shards


def figure2_graph():
    """The paper's Figure 2 example: 5 nodes, 2 shards.

    Shard 0 cores: globals {0, 1, 2}; shard 1 cores: globals {3, 4}.
    Edges (undirected, weighted): 0-1 (1), 0-2 (2), 1-2 (1), 2-3 (3),
    1-3 (1), 3-4 (2).
    """
    g = CSRGraph.from_edges(
        5,
        [0, 0, 1, 2, 1, 3],
        [1, 2, 2, 3, 3, 4],
        [1.0, 2.0, 1.0, 3.0, 1.0, 2.0],
    )
    assignment = np.array([0, 0, 0, 1, 1])
    return g, PartitionResult(assignment, 2)


class TestBuildShards:
    def test_core_nodes_partitioned(self):
        g, res = figure2_graph()
        sg = build_shards(g, res)
        np.testing.assert_array_equal(sg.shards[0].core_global, [0, 1, 2])
        np.testing.assert_array_equal(sg.shards[1].core_global, [3, 4])

    def test_local_ids_are_ranks(self):
        g, res = figure2_graph()
        sg = build_shards(g, res)
        local, shard = sg.address_of([0, 1, 2, 3, 4])
        np.testing.assert_array_equal(local, [0, 1, 2, 0, 1])
        np.testing.assert_array_equal(shard, [0, 0, 0, 1, 1])

    def test_halo_nodes(self):
        g, res = figure2_graph()
        sg = build_shards(g, res)
        # Shard 0's halo: global 3 (reached from nodes 1 and 2).
        np.testing.assert_array_equal(sg.shards[0].halo_globals(), [3])
        # Shard 1's halo: globals 1 and 2.
        np.testing.assert_array_equal(sg.shards[1].halo_globals(), [1, 2])

    def test_neighbor_arrays_reference_owner_addresses(self):
        g, res = figure2_graph()
        sg = build_shards(g, res)
        s0 = sg.shards[0]
        # Core node global 2 (local 2): neighbors are 0, 1 (local) and 3
        # (halo, owned by shard 1 where its local ID is 0).
        s, e = s0.indptr[2], s0.indptr[3]
        np.testing.assert_array_equal(s0.nbr_global[s:e], [0, 1, 3])
        np.testing.assert_array_equal(s0.nbr_shard[s:e], [0, 0, 1])
        np.testing.assert_array_equal(s0.nbr_local[s:e], [0, 1, 0])

    def test_weighted_degrees_cached_for_halos(self):
        g, res = figure2_graph()
        sg = build_shards(g, res)
        s0 = sg.shards[0]
        s, e = s0.indptr[2], s0.indptr[3]
        # global 3 weighted degree = 3 + 1 + 2 = 6
        assert s0.nbr_wdeg[s:e][2] == pytest.approx(6.0)

    def test_core_wdeg_matches_graph(self):
        g, res = figure2_graph()
        sg = build_shards(g, res)
        for shard in sg.shards:
            np.testing.assert_allclose(
                shard.core_wdeg, g.weighted_degrees[shard.core_global]
            )

    def test_shards_cover_all_arcs(self):
        g = powerlaw_cluster(400, 8, seed=0)
        res = HashPartitioner().partition(g, 3)
        sg = build_shards(g, res)
        assert sum(s.n_entries for s in sg.shards) == g.n_arcs

    def test_size_mismatch_rejected(self):
        g, _ = figure2_graph()
        with pytest.raises(ShardError, match="covers"):
            build_shards(g, PartitionResult(np.zeros(3, dtype=int), 1))

    def test_memory_multiplier_about_1_5x(self):
        """Paper: preprocessed shards cost ~1.5x the raw weighted CSR."""
        g = powerlaw_cluster(2000, 10, seed=1)
        raw = g.indices.nbytes + g.weights.nbytes + g.indptr.nbytes
        sg = build_shards(g, HashPartitioner().partition(g, 4))
        ratio = sg.total_memory_nbytes() / raw
        # we store global IDs too (walk support), so a bit above 1.5x
        assert 1.2 < ratio < 3.0

    def test_describe(self):
        g, res = figure2_graph()
        sg = build_shards(g, res)
        d = sg.describe()
        assert d[0]["n_core"] == 3
        assert d[0]["n_halo"] == 1


class TestAddressTranslation:
    def test_roundtrip(self):
        g = powerlaw_cluster(300, 6, seed=2)
        sg = build_shards(g, MetisLitePartitioner(seed=0).partition(g, 3))
        gids = np.arange(300)
        local, shard = sg.address_of(gids)
        np.testing.assert_array_equal(sg.global_of(local, shard), gids)

    def test_keys_roundtrip(self):
        g = powerlaw_cluster(200, 6, seed=3)
        sg = build_shards(g, HashPartitioner().partition(g, 4))
        gids = np.array([0, 5, 17, 199])
        np.testing.assert_array_equal(
            sg.globals_from_keys(sg.keys_of(gids)), gids
        )

    def test_out_of_range(self):
        g, res = figure2_graph()
        sg = build_shards(g, res)
        with pytest.raises(ShardError):
            sg.address_of([99])
        with pytest.raises(ShardError):
            sg.global_of([0], [9])
        with pytest.raises(ShardError):
            sg.global_of([99], [0])


class TestShardFetch:
    @pytest.fixture()
    def sharded(self):
        g, res = figure2_graph()
        return build_shards(g, res, seed=42)

    def test_vertex_props_zero_copy(self, sharded):
        s0 = sharded.shards[0]
        prop = s0.get_vertex_props(np.array([1, 2]))
        assert prop.n_sources == 2
        local, shard, glob, w, wdeg = prop.neighbors(0)
        # node global 1: neighbors 0, 2, 3
        np.testing.assert_array_equal(glob, [0, 2, 3])
        # views share memory with the shard
        assert glob.base is s0.nbr_global or glob is s0.nbr_global

    def test_vertex_prop_to_arrays_matches_batch(self, sharded):
        s0 = sharded.shards[0]
        ids = np.array([0, 2])
        prop_arrays = s0.get_vertex_props(ids).to_arrays()
        batch_arrays = s0.get_neighbor_batch(ids).to_arrays()
        for a, b in zip(prop_arrays, batch_arrays):
            np.testing.assert_array_equal(a, b)

    def test_neighbor_lists_matches_batch(self, sharded):
        s0 = sharded.shards[0]
        ids = np.array([0, 1, 2])
        lists_arrays = s0.get_neighbor_lists(ids).to_arrays()
        batch_arrays = s0.get_neighbor_batch(ids).to_arrays()
        for a, b in zip(lists_arrays, batch_arrays):
            np.testing.assert_array_equal(a, b)

    def test_single(self, sharded):
        s1 = sharded.shards[1]
        resp = s1.get_single(0)  # global 3: neighbors 1, 2, 4
        indptr, local, shard, glob, w, wdeg, src_wdeg = resp.to_arrays()
        np.testing.assert_array_equal(glob, [1, 2, 4])
        assert src_wdeg[0] == pytest.approx(6.0)

    def test_out_of_range_ids_rejected(self, sharded):
        with pytest.raises(ShardError, match="out of range"):
            sharded.shards[0].get_vertex_props(np.array([7]))
        with pytest.raises(ShardError, match="out of range"):
            sharded.shards[0].get_neighbor_batch(np.array([-1]))

    def test_compressed_payload_constant_tensors(self, sharded):
        s0 = sharded.shards[0]
        small = s0.get_neighbor_batch(np.array([0]))
        big = s0.get_neighbor_batch(np.array([0, 1, 2]))
        assert small.rpc_payload()[1] == big.rpc_payload()[1] == 7

    def test_uncompressed_payload_grows_with_batch(self, sharded):
        s0 = sharded.shards[0]
        small = s0.get_neighbor_lists(np.array([0]))
        big = s0.get_neighbor_lists(np.array([0, 1, 2]))
        assert small.rpc_payload()[1] == 6   # 5 tensors + src_wdeg
        assert big.rpc_payload()[1] == 16    # 15 tensors + src_wdeg

    def test_empty_request(self, sharded):
        s0 = sharded.shards[0]
        batch = s0.get_neighbor_batch(np.array([], dtype=np.int64))
        assert batch.n_sources == 0
        assert batch.n_entries == 0

    def test_sample_one_neighbor_valid(self, sharded):
        s0 = sharded.shards[0]
        for _ in range(10):
            nl, ng, ns = s0.sample_one_neighbor(np.array([1]))
            # node global 1's neighbors: 0, 2 (shard 0), 3 (shard 1)
            assert ng[0] in (0, 2, 3)
            expected_shard = 1 if ng[0] == 3 else 0
            assert ns[0] == expected_shard

    def test_sample_isolated_node_stays(self):
        g = CSRGraph.from_edges(3, [0], [1])  # node 2 isolated
        sg = build_shards(g, PartitionResult(np.zeros(3, dtype=int), 1), seed=0)
        nl, ng, ns = sg.shards[0].sample_one_neighbor(np.array([2]))
        assert ng[0] == 2 and ns[0] == 0


class TestShardProperties:
    @given(n=st.integers(20, 120), k=st.integers(1, 4), seed=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_shard_reconstruction_equals_graph(self, n, k, seed):
        """Concatenating all shards' rows reproduces the original graph."""
        g = erdos_renyi(n, 5, seed=seed)
        sg = build_shards(g, HashPartitioner().partition(g, k))
        seen_arcs = 0
        for shard in sg.shards:
            for i, gid in enumerate(shard.core_global):
                s, e = shard.indptr[i], shard.indptr[i + 1]
                np.testing.assert_array_equal(
                    shard.nbr_global[s:e], g.neighbors(gid)
                )
                np.testing.assert_allclose(
                    shard.nbr_weight[s:e], g.neighbor_weights(gid)
                )
                seen_arcs += e - s
        assert seen_arcs == g.n_arcs

    @given(n=st.integers(20, 120), k=st.integers(2, 4), seed=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_halo_addressing_consistent(self, n, k, seed):
        """Every neighbor entry's (local, shard) resolves to its global ID."""
        g = erdos_renyi(n, 5, seed=seed)
        sg = build_shards(g, HashPartitioner().partition(g, k))
        for shard in sg.shards:
            if shard.n_entries == 0:
                continue
            resolved = sg.global_of(shard.nbr_local, shard.nbr_shard)
            np.testing.assert_array_equal(resolved, shard.nbr_global)
