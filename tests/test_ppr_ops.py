"""Tests for the hashmap-backed SSPPR operators (pop/push) and the dense
tensor-based state, against single-machine references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import erdos_renyi, powerlaw_cluster
from repro.partition import HashPartitioner, MetisLitePartitioner
from repro.ppr import PPRParams, SSPPR, forward_push_parallel
from repro.ppr.ppr_ops import pack_keys, unpack_keys
from repro.ppr.tensor_ops import DenseSSPPR
from repro.storage import build_shards

PARAMS = PPRParams()


def run_hashmap_query(sharded, source_global, params=PARAMS):
    """Drive SSPPR to completion directly against shards (no RPC layer)."""
    lid, sid = sharded.address_of([source_global])
    shard = sharded.shards[sid[0]]
    wdeg = shard.source_weighted_degrees(lid)[0]
    m = SSPPR(int(lid[0]), int(sid[0]), params, float(wdeg),
              sharded.n_shards)
    while True:
        node_ids, shard_ids = m.pop()
        if len(node_ids) == 0:
            return m
        for j in range(sharded.n_shards):
            mask = shard_ids == j
            if not mask.any():
                continue
            infos = sharded.shards[j].get_neighbor_batch(node_ids[mask])
            m.push(infos, node_ids[mask], shard_ids[mask])


def run_dense_query(sharded, source_global, params=PARAMS):
    """Drive the tensor baseline to completion directly against shards."""
    n = sharded.graph.n_nodes
    m = DenseSSPPR(source_global, params, n, sharded.owner_local,
                   sharded.owner_shard)
    lid, sid = sharded.address_of([source_global])
    m.seed_source_degree(
        sharded.shards[sid[0]].source_weighted_degrees(lid)[0]
    )
    while True:
        gids, node_ids, shard_ids = m.pop()
        if len(gids) == 0:
            return m
        for j in range(sharded.n_shards):
            mask = shard_ids == j
            if not mask.any():
                continue
            infos = sharded.shards[j].get_neighbor_batch(node_ids[mask])
            m.push(infos, gids[mask])


class TestKeys:
    def test_pack_unpack_roundtrip(self):
        local = np.array([0, 5, 123456], dtype=np.int64)
        shard = np.array([0, 3, 7], dtype=np.int64)
        keys = pack_keys(local, shard, 8)
        l2, s2 = unpack_keys(keys, 8)
        np.testing.assert_array_equal(l2, local)
        np.testing.assert_array_equal(s2, shard)


class TestSSPPRState:
    def test_init_queues_source(self):
        m = SSPPR(3, 1, PARAMS, 2.5, n_shards=4)
        node_ids, shard_ids = m.pop()
        np.testing.assert_array_equal(node_ids, [3])
        np.testing.assert_array_equal(shard_ids, [1])
        # second pop is empty
        n2, _ = m.pop()
        assert len(n2) == 0

    def test_invalid_init(self):
        with pytest.raises(ValueError):
            SSPPR(0, 0, PARAMS, 1.0, n_shards=0)
        with pytest.raises(ValueError):
            SSPPR(0, 0, PARAMS, -1.0, n_shards=1)

    def test_push_unknown_source_rejected(self):
        g = powerlaw_cluster(50, 4, seed=0)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        m = SSPPR(0, 0, PARAMS, 1.0, n_shards=2)
        infos = sharded.shards[1].get_neighbor_batch(np.array([0]))
        with pytest.raises(ValueError, match="never touched"):
            m.push(infos, np.array([0]), np.array([1]))

    def test_push_length_mismatch_rejected(self):
        g = powerlaw_cluster(50, 4, seed=0)
        sharded = build_shards(g, HashPartitioner().partition(g, 1))
        m = SSPPR(0, 0, PARAMS, 1.0, n_shards=1)
        infos = sharded.shards[0].get_neighbor_batch(np.array([0, 1]))
        with pytest.raises(ValueError, match="sources"):
            m.push(infos, np.array([0]), np.array([0]))

    def test_matches_single_machine_reference(self):
        g = powerlaw_cluster(400, 8, mixing=0.2, seed=1)
        sharded = build_shards(g, MetisLitePartitioner(seed=0).partition(g, 3))
        for source in (0, 17, 250):
            m = run_hashmap_query(sharded, source)
            approx = m.dense_result(sharded, g.n_nodes)
            ref, _, _ = forward_push_parallel(g, source, PARAMS)
            bound = 2 * PARAMS.epsilon * g.weighted_degrees.sum()
            assert np.abs(approx - ref).sum() <= bound
            assert m.total_mass() == pytest.approx(1.0)

    def test_chunked_pushes_stay_within_epsilon_bound(self):
        """Splitting an iteration's frontier into per-shard chunks changes
        intermediate residual consumption (a node pushed in chunk A may
        receive more mass from chunk B within the same iteration), but both
        schedules remain valid epsilon-approximations — the guarantee the
        overlap optimization relies on."""
        g = powerlaw_cluster(300, 6, mixing=0.2, seed=2)
        sharded4 = build_shards(g, HashPartitioner().partition(g, 4))
        sharded1 = build_shards(g, HashPartitioner().partition(g, 1))
        ma = run_hashmap_query(sharded4, 11)
        mb = run_hashmap_query(sharded1, 11)
        a = ma.dense_result(sharded4, g.n_nodes)
        b = mb.dense_result(sharded1, g.n_nodes)
        bound = 2 * PARAMS.epsilon * g.weighted_degrees.sum()
        assert np.abs(a - b).sum() <= bound
        assert ma.total_mass() == pytest.approx(1.0)
        assert mb.total_mass() == pytest.approx(1.0)

    def test_isolated_source(self):
        from repro.graph import CSRGraph
        from repro.partition import PartitionResult
        g = CSRGraph.from_edges(3, [0], [1])
        sharded = build_shards(g, PartitionResult(np.zeros(3, dtype=int), 1))
        m = run_hashmap_query(sharded, 2)
        dense = m.dense_result(sharded, 3)
        assert dense[2] == pytest.approx(1.0)

    def test_results_only_positive(self):
        g = powerlaw_cluster(200, 5, seed=3)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        m = run_hashmap_query(sharded, 0)
        _keys, values = m.results()
        assert np.all(values > 0)

    def test_counters_populated(self):
        g = powerlaw_cluster(200, 5, seed=4)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        m = run_hashmap_query(sharded, 0)
        assert m.n_pushes > 0
        assert m.n_iterations > 0
        assert m.n_entries_processed >= m.n_pushes
        assert m.frontier_size() == 0  # drained


class TestDenseState:
    def test_matches_hashmap_engine(self):
        g = powerlaw_cluster(400, 8, mixing=0.2, seed=5)
        sharded = build_shards(g, MetisLitePartitioner(seed=0).partition(g, 3))
        for source in (3, 99):
            a = run_hashmap_query(sharded, source).dense_result(
                sharded, g.n_nodes
            )
            b = run_dense_query(sharded, source).dense_result()
            bound = 2 * PARAMS.epsilon * g.weighted_degrees.sum()
            assert np.abs(a - b).sum() <= bound

    def test_mass_conservation(self):
        g = powerlaw_cluster(300, 6, seed=6)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        m = run_dense_query(sharded, 5)
        assert m.total_mass() == pytest.approx(1.0)

    def test_invalid_init(self):
        with pytest.raises(ValueError):
            DenseSSPPR(10, PARAMS, 5, np.zeros(5, dtype=int),
                       np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            DenseSSPPR(0, PARAMS, 5, np.zeros(3, dtype=int),
                       np.zeros(5, dtype=int))

    def test_push_length_mismatch(self):
        g = powerlaw_cluster(50, 4, seed=7)
        sharded = build_shards(g, HashPartitioner().partition(g, 1))
        m = DenseSSPPR(0, PARAMS, 50, sharded.owner_local,
                       sharded.owner_shard)
        infos = sharded.shards[0].get_neighbor_batch(np.array([0, 1]))
        with pytest.raises(ValueError, match="sources"):
            m.push(infos, np.array([0]))


class TestEngineEquivalenceProperties:
    @given(
        n=st.integers(30, 150),
        k=st.integers(1, 4),
        seed=st.integers(0, 20),
        eps_exp=st.sampled_from([4, 5]),
    )
    @settings(max_examples=15, deadline=None)
    def test_hashmap_equals_reference_any_graph(self, n, k, seed, eps_exp):
        g = erdos_renyi(n, 5, seed=seed)
        params = PPRParams(epsilon=10.0 ** (-eps_exp))
        sharded = build_shards(g, HashPartitioner().partition(g, k))
        source = seed % n
        m = run_hashmap_query(sharded, source, params)
        approx = m.dense_result(sharded, n)
        ref, _, _ = forward_push_parallel(g, source, params)
        bound = 2 * params.epsilon * g.weighted_degrees.sum() + 1e-12
        assert np.abs(approx - ref).sum() <= bound
        assert m.total_mass() == pytest.approx(1.0)
