"""Tests for Forward Push variants, power iteration, and accuracy metrics.

The central correctness claims:

* sequential and parallel Forward Push conserve mass and approximate the
  power-iteration ground truth within the epsilon error bound;
* the hashmap-based SSPPR operators produce the same result as the
  single-machine parallel reference when fed the same graph through shards.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, cycle_graph, erdos_renyi, path_graph, powerlaw_cluster, star_graph
from repro.ppr import (
    PPRParams,
    forward_push_parallel,
    forward_push_sequential,
    l1_error,
    power_iteration_ssppr,
    topk_nodes,
    topk_precision,
)
from repro.ppr.power_iteration import build_transition

PARAMS = PPRParams(alpha=0.462, epsilon=1e-6)


class TestParams:
    def test_defaults_match_paper(self):
        p = PPRParams()
        assert p.alpha == pytest.approx(0.462)
        assert p.epsilon == pytest.approx(1e-6)

    def test_invalid(self):
        with pytest.raises(ValueError):
            PPRParams(alpha=1.0)
        with pytest.raises(ValueError):
            PPRParams(alpha=0.0)
        with pytest.raises(ValueError):
            PPRParams(epsilon=0.0)

    def test_with_epsilon(self):
        p = PPRParams().with_epsilon(1e-4)
        assert p.epsilon == 1e-4
        assert p.alpha == pytest.approx(0.462)


class TestSequentialPush:
    def test_mass_conservation(self):
        g = powerlaw_cluster(200, 6, seed=0)
        ppr, residual, _ = forward_push_sequential(g, 0, PARAMS)
        assert ppr.sum() + residual.sum() == pytest.approx(1.0)

    def test_residuals_below_threshold_at_end(self):
        g = powerlaw_cluster(200, 6, seed=1)
        _, residual, _ = forward_push_sequential(g, 5, PARAMS)
        thresh = PARAMS.epsilon * g.weighted_degrees
        assert np.all(residual <= thresh + 1e-15)

    def test_source_gets_largest_share_on_path(self):
        g = path_graph(10)
        ppr, _, _ = forward_push_sequential(g, 4, PARAMS)
        assert np.argmax(ppr) == 4

    def test_star_center_vs_leaves(self):
        g = star_graph(10)
        ppr, _, _ = forward_push_sequential(g, 0, PARAMS)
        # all leaves are symmetric
        np.testing.assert_allclose(ppr[1:], ppr[1], atol=1e-9)
        assert ppr[0] > ppr[1]

    def test_isolated_source_absorbs_everything(self):
        g = CSRGraph.from_edges(3, [0], [1])  # node 2 isolated
        ppr, residual, _ = forward_push_sequential(g, 2, PARAMS)
        assert ppr[2] == pytest.approx(1.0)
        assert residual.sum() == pytest.approx(0.0)

    def test_bad_source(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            forward_push_sequential(g, 3, PARAMS)

    def test_matches_power_iteration(self):
        g = powerlaw_cluster(150, 5, seed=2)
        ppr, _, _ = forward_push_sequential(g, 3, PARAMS)
        exact = power_iteration_ssppr(g, 3, alpha=PARAMS.alpha)
        # epsilon-approximation: total error bounded by eps * sum(d_w)
        assert l1_error(ppr, exact) <= PARAMS.epsilon * g.weighted_degrees.sum() + 1e-9


class TestParallelPush:
    def test_mass_conservation(self):
        g = powerlaw_cluster(200, 6, seed=3)
        ppr, residual, _ = forward_push_parallel(g, 0, PARAMS)
        assert ppr.sum() + residual.sum() == pytest.approx(1.0)

    def test_matches_sequential(self):
        g = powerlaw_cluster(150, 5, seed=4)
        seq, _, _ = forward_push_sequential(g, 7, PARAMS)
        par, _, _ = forward_push_parallel(g, 7, PARAMS)
        # both are eps-approximations; they agree to ~eps * d_w scale
        assert l1_error(seq, par) <= 2 * PARAMS.epsilon * g.weighted_degrees.sum()

    def test_parallel_uses_more_or_equal_pushes(self):
        """The paper: the parallel version needs slightly more pushes."""
        g = powerlaw_cluster(300, 8, seed=5)
        totals = []
        for s in (0, 3, 11):
            _, _, seq_stats = forward_push_sequential(g, s, PARAMS)
            _, _, par_stats = forward_push_parallel(g, s, PARAMS)
            totals.append((seq_stats.n_pushes, par_stats.n_pushes))
        assert sum(p for _, p in totals) >= sum(s for s, _ in totals)

    def test_fewer_iterations_than_pushes(self):
        g = powerlaw_cluster(300, 8, seed=6)
        _, _, stats = forward_push_parallel(g, 0, PARAMS)
        assert stats.n_iterations < stats.n_pushes

    def test_cycle_symmetry(self):
        g = cycle_graph(9)
        ppr, _, _ = forward_push_parallel(g, 0, PARAMS)
        # symmetric around the source
        for k in range(1, 5):
            assert ppr[k] == pytest.approx(ppr[9 - k], rel=1e-6)


class TestPowerIteration:
    def test_sums_to_one(self):
        g = powerlaw_cluster(150, 5, seed=7)
        pi = power_iteration_ssppr(g, 0)
        assert pi.sum() == pytest.approx(1.0, abs=1e-8)

    def test_dangling_self_loop_semantics(self):
        g = CSRGraph.from_edges(3, [0], [1])  # node 2 isolated
        pi = power_iteration_ssppr(g, 2)
        assert pi[2] == pytest.approx(1.0, abs=1e-8)

    def test_source_out_of_range(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            power_iteration_ssppr(g, 5)

    def test_reused_transition_matches(self):
        g = powerlaw_cluster(100, 5, seed=8)
        pt = build_transition(g)
        a = power_iteration_ssppr(g, 4, pt=pt)
        b = power_iteration_ssppr(g, 4)
        np.testing.assert_allclose(a, b)

    def test_alpha_one_like_behavior_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            power_iteration_ssppr(g, 0, alpha=1.5)


class TestAccuracyMetrics:
    def test_topk_nodes(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        np.testing.assert_array_equal(topk_nodes(scores, 2), [1, 3])

    def test_topk_more_than_len(self):
        scores = np.array([0.3, 0.1])
        np.testing.assert_array_equal(topk_nodes(scores, 10), [0, 1])

    def test_topk_precision_perfect(self):
        a = np.array([0.5, 0.4, 0.3, 0.0])
        assert topk_precision(a, a.copy(), 3) == 1.0

    def test_topk_precision_partial(self):
        a = np.array([1.0, 0.9, 0.0, 0.0])
        b = np.array([1.0, 0.0, 0.9, 0.0])
        assert topk_precision(a, b, 2) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            topk_precision(np.zeros(3), np.zeros(4), 2)
        with pytest.raises(ValueError):
            l1_error(np.zeros(3), np.zeros(4))

    def test_paper_accuracy_claim_on_standin(self):
        """Forward Push at eps=1e-6 hits 97%+ top-100 precision (Sec 4.2)."""
        g = powerlaw_cluster(2000, 12, mixing=0.1, seed=9)
        exact = power_iteration_ssppr(g, 0, alpha=PARAMS.alpha)
        approx, _, _ = forward_push_parallel(g, 0, PARAMS)
        assert topk_precision(approx, exact, 100) >= 0.97


class TestPushProperties:
    @given(
        n=st.integers(10, 80),
        deg=st.integers(2, 6),
        seed=st.integers(0, 50),
        alpha=st.floats(0.05, 0.95),
        eps_exp=st.integers(3, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_mass_conservation_any_graph(self, n, deg, seed, alpha, eps_exp):
        g = erdos_renyi(n, deg, seed=seed)
        params = PPRParams(alpha=alpha, epsilon=10.0 ** (-eps_exp))
        source = seed % n
        ppr, residual, _ = forward_push_parallel(g, source, params)
        assert ppr.sum() + residual.sum() == pytest.approx(1.0)
        assert np.all(ppr >= 0) and np.all(residual >= -1e-15)

    @given(n=st.integers(10, 60), seed=st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_approximation_bound(self, n, seed):
        """|pi_hat - pi| <= eps * sum(d_w), the forward push guarantee."""
        g = erdos_renyi(n, 4, seed=seed)
        params = PPRParams(alpha=0.3, epsilon=1e-5)
        source = seed % n
        approx, _, _ = forward_push_parallel(g, source, params)
        exact = power_iteration_ssppr(g, source, alpha=0.3)
        assert l1_error(approx, exact) <= params.epsilon * g.weighted_degrees.sum() + 1e-9
