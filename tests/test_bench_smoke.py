"""Tiny-scale smoke run of the whole bench suite (slow, excluded tier-1).

Executes every ``benchmarks/bench_*.py`` at ``REPRO_BENCH_SCALE=tiny`` in a
subprocess (the same path ``repro.cli bench run`` takes) and asserts each
bench emitted a schema-valid ``results/<name>.json`` whose stored
expectations hold, the ``.txt`` siblings agree, and the aggregate builds a
valid trajectory.
"""

import ast
from pathlib import Path

import pytest

from repro.obs.bench import (
    build_trajectory,
    evaluate_expectations,
    lint_results,
    load_reports,
    run_suite,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCHMARKS_DIR = REPO_ROOT / "benchmarks"
RESULTS_DIR = BENCHMARKS_DIR / "results"

pytestmark = pytest.mark.slow


def bench_names() -> set[str]:
    # every publish() call's first literal argument is the report name
    names = set()
    for path in BENCHMARKS_DIR.glob("bench_*.py"):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "publish"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)):
                names.add(node.args[0].value)
    return names


@pytest.fixture(scope="module")
def suite_run():
    rc = run_suite(BENCHMARKS_DIR, "tiny", repo_root=REPO_ROOT)
    assert rc == 0, "tiny-scale bench suite failed"
    return load_reports(RESULTS_DIR)


def test_every_bench_emits_valid_report(suite_run):
    expected = bench_names()
    assert expected, "no publish() calls found under benchmarks/"
    produced = {d["name"] for d in suite_run if d["scale"] == "tiny"}
    assert expected <= produced
    for d in suite_run:
        assert d["rows"], d["name"]


def test_stored_expectations_hold(suite_run):
    failures = [msg for d in suite_run for msg in evaluate_expectations(d)]
    assert failures == []


def test_txt_siblings_agree(suite_run):
    assert lint_results(RESULTS_DIR) == []


def test_trajectory_aggregates_all(suite_run):
    at_tiny = [d for d in suite_run if d["scale"] == "tiny"]
    traj = build_trajectory(at_tiny, "tiny")
    assert set(traj["benches"]) == {d["name"] for d in at_tiny}
    assert all(b["records"] for b in traj["benches"].values())
