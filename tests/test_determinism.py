"""Cross-stack determinism and stress tests.

Reproducibility is a core property of the virtual-time methodology: with
fixed seeds, everything *structural* (partitions, query sets, walk paths,
RPC counts, modeled network charges) must be identical run to run — only
measured wall-clock compute varies.
"""

import numpy as np
import pytest

from repro import EngineConfig, GraphEngine, PPRParams, RunRequest
from repro.engine.query import sample_sources
from repro.graph import load_dataset, powerlaw_cluster
from repro.partition import MetisLitePartitioner
from repro.simt import Scheduler, Sleep, Wait
from repro.storage import build_shards


class TestDeterminism:
    def test_dataset_generation_identical(self):
        a = load_dataset("products", scale=0.02, use_cache=False)
        b = load_dataset("products", scale=0.02, use_cache=False)
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_allclose(a.weights, b.weights)

    def test_partition_identical(self):
        g = powerlaw_cluster(600, 8, mixing=0.1, seed=0)
        a = MetisLitePartitioner(seed=4).partition(g, 4).assignment
        b = MetisLitePartitioner(seed=4).partition(g, 4).assignment
        np.testing.assert_array_equal(a, b)

    def test_query_sampling_identical(self):
        g = powerlaw_cluster(400, 6, seed=1)
        sharded = build_shards(g, MetisLitePartitioner(seed=0).partition(g, 2))
        np.testing.assert_array_equal(
            sample_sources(sharded, 8, seed=9),
            sample_sources(sharded, 8, seed=9),
        )

    def test_walks_identical_in_sim(self):
        g = powerlaw_cluster(400, 6, seed=2)
        runs = []
        for _ in range(2):
            engine = GraphEngine(g, EngineConfig(n_machines=2, seed=0))
            runs.append(engine.run_random_walks(n_roots=8, walk_length=6,
                                                seed=3))
        np.testing.assert_array_equal(runs[0].walks, runs[1].walks)

    def test_ppr_values_identical(self):
        """PPR math is deterministic (only timings vary between runs)."""
        g = powerlaw_cluster(400, 6, mixing=0.2, seed=3)
        results = []
        for _ in range(2):
            engine = GraphEngine(g, EngineConfig(n_machines=2, seed=0))
            run = engine.run(RunRequest(n_queries=4, keep_states=True, seed=5))
            results.append({
                gid: s.dense_result(engine.sharded, g.n_nodes)
                for gid, s in run.states.items()
            })
        assert results[0].keys() == results[1].keys()
        for gid in results[0]:
            np.testing.assert_array_equal(results[0][gid], results[1][gid])

    def test_rpc_structure_identical(self):
        g = powerlaw_cluster(400, 6, mixing=0.2, seed=4)
        counts = []
        for _ in range(2):
            engine = GraphEngine(g, EngineConfig(n_machines=3, seed=0,
                                                 trace_rpc=True))
            run = engine.run(RunRequest(n_queries=6, seed=7))
            counts.append((run.remote_requests, run.local_calls,
                           run.trace.calls_by_method()))
        assert counts[0] == counts[1]


class TestSchedulerStress:
    def test_many_processes(self):
        """500 interleaved processes complete deterministically."""
        sched = Scheduler()
        order = []

        def body(i):
            for step in range(3):
                yield Sleep(((i * 31 + step * 17) % 100) / 100.0)
            order.append(i)

        for i in range(500):
            sched.spawn(f"p{i}", body(i))
        sched.run()
        assert len(order) == 500

    def test_deep_future_chain(self):
        """A long chain of handoffs through futures resolves correctly."""
        from repro.simt import SimFuture
        sched = Scheduler()
        n = 200
        futs = [SimFuture(tag=f"f{i}") for i in range(n + 1)]
        futs[0].set_result(0, 0.0)

        def relay(i):
            value = yield Wait(futs[i])
            futs[i + 1].set_result(value + 1, sched.now)

        for i in range(n):
            sched.spawn(f"relay{i}", relay(i))

        def sink():
            value = yield Wait(futs[n])
            return value

        sched.spawn("sink", sink())
        sched.run()
        assert sched.result_of("sink") == n

    def test_event_counter_grows(self):
        sched = Scheduler()

        def body():
            for _ in range(10):
                yield Sleep(0.1)

        sched.spawn("p", body())
        sched.run()
        assert sched.events_executed >= 10


class TestEngineStress:
    @pytest.mark.slow
    def test_large_query_batch(self):
        """64 queries across 4 machines x 2 procs complete and verify."""
        g = powerlaw_cluster(800, 8, mixing=0.15, seed=5)
        engine = GraphEngine(g, EngineConfig(n_machines=4,
                                             procs_per_machine=2, seed=0))
        run = engine.run(RunRequest(n_queries=64, seed=11,
                                 params=PPRParams(epsilon=1e-5)))
        assert run.n_queries == 64
        assert len(run.latencies) == 64
        assert run.makespan > 0
        # every process did work
        assert len(run.per_proc_clocks) == 8
        assert all(c > 0 for c in run.per_proc_clocks.values())
