"""The multi-tenant serving layer (docs/serving.md).

Four pillars:

* unit coverage of admission control (bounded queue, quotas, the
  two-phase guarantee-round + priority-fill batch selection) and the
  session/submit API surface;
* the hypothesis property the tenancy model promises — priority
  admission never starves an under-quota tenant: whenever batch capacity
  covers the number of waiting tenants, every waiting tenant gets a slot
  in the very next batch, regardless of priorities and arrival order;
* the acceptance differential — one seeded Poisson trace, served once on
  the virtual-time scheduler and once on ``ThreadRuntime``, must agree
  bitwise on admission decisions, batch compositions, latencies, and the
  per-query result vectors (chaos runs included: the fault plan replays
  the same drops on both);
* the serving counters surfacing as first-class typed
  ``QueryRunResult`` fields and ``serve.*`` metrics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineConfig, GraphEngine, RunRequest
from repro.graph import powerlaw_cluster
from repro.rpc import RetryPolicy
from repro.serving import (
    AdmissionController,
    AdmissionRejected,
    Query,
    RejectReason,
    ServiceCostModel,
    SessionConfig,
    TenantSpec,
    bursty_trace,
    poisson_trace,
    serve_trace,
)
from repro.simt import FaultPlan

TENANTS = (TenantSpec("gold", priority=2, quota=32, weight=2.0),
           TenantSpec("silver", priority=1, quota=16, weight=1.5),
           TenantSpec("free", priority=0, quota=4, weight=1.0))


@pytest.fixture(scope="module")
def engine():
    graph = powerlaw_cluster(400, 5, mixing=0.2, seed=11)
    return GraphEngine(graph, EngineConfig(n_machines=2))


class TestAdmissionController:
    def test_queue_full_rejection_typed(self):
        ac = AdmissionController(queue_cap=2, batch_cap=4)
        assert ac.offer(0, "a", "x").admitted
        assert ac.offer(1, "a", "y").admitted
        d = ac.offer(2, "a", "z")
        assert not d.admitted
        assert d.reason is RejectReason.QUEUE_FULL
        assert "queue_full" in d.describe()

    def test_quota_rejection_typed_and_released_by_drain(self):
        ac = AdmissionController(tenants=(TenantSpec("t", quota=1),),
                                 queue_cap=8, batch_cap=8)
        assert ac.offer(0, "t", "x").admitted
        d = ac.offer(1, "t", "y")
        assert d.reason is RejectReason.QUOTA_EXCEEDED
        assert ac.take_batch() == ["x"]
        assert ac.offer(2, "t", "z").admitted  # quota freed by the batch

    def test_guarantee_round_then_priority_fill(self):
        ac = AdmissionController(tenants=TENANTS, queue_cap=16, batch_cap=4)
        # free floods first, gold and silver arrive later
        for seq in range(3):
            ac.offer(seq, "free", f"f{seq}")
        ac.offer(3, "gold", "g0")
        ac.offer(4, "silver", "s0")
        ac.offer(5, "gold", "g1")
        batch = ac.take_batch()
        # guarantee round: one slot each (gold first, then silver, free);
        # priority fill: the second gold; returned in submit order
        assert batch == ["f0", "g0", "s0", "g1"]

    def test_batch_returned_in_submit_order(self):
        ac = AdmissionController(tenants=TENANTS, queue_cap=16, batch_cap=8)
        ac.offer(0, "free", "f")
        ac.offer(1, "gold", "g")
        assert ac.take_batch() == ["f", "g"]

    def test_undeclared_tenant_gets_default_contract(self):
        ac = AdmissionController(queue_cap=4, batch_cap=4)
        assert ac.offer(0, "walk-in", "w").admitted
        assert ac.spec("walk-in").quota is None
        assert ac.spec("walk-in").priority == 0


class TestStarvationFreedom:
    """Priority admission never starves an under-quota tenant."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from(["gold", "silver", "free"]),
                    min_size=1, max_size=24),
           st.integers(min_value=3, max_value=8))
    def test_every_waiting_tenant_in_next_batch(self, offers, batch_cap):
        ac = AdmissionController(tenants=TENANTS, queue_cap=64,
                                 batch_cap=batch_cap)
        admitted_tenants = set()
        for seq, tenant in enumerate(offers):
            if ac.offer(seq, tenant, (seq, tenant)).admitted:
                admitted_tenants.add(tenant)
        # batch_cap >= 3 >= number of distinct waiting tenants, so the
        # guarantee round must cover every one of them
        batch = ac.take_batch()
        assert {t for (_, t) in batch} == admitted_tenants

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(["gold", "silver", "free"]),
                    min_size=4, max_size=40))
    def test_drain_to_empty_preserves_everything(self, offers):
        ac = AdmissionController(tenants=TENANTS, queue_cap=64, batch_cap=3)
        kept = []
        for seq, tenant in enumerate(offers):
            if ac.offer(seq, tenant, seq).admitted:
                kept.append(seq)
        drained = []
        while ac.depth:
            drained.extend(ac.take_batch())
        assert sorted(drained) == kept  # nothing lost, nothing duplicated


class TestArrivalTraces:
    def test_poisson_deterministic_per_seed(self):
        pool = np.arange(100)
        a = poisson_trace(pool, rate=300, duration=0.2, seed=5,
                          tenants=TENANTS, walk_frac=0.3)
        b = poisson_trace(pool, rate=300, duration=0.2, seed=5,
                          tenants=TENANTS, walk_frac=0.3)
        assert a == b
        c = poisson_trace(pool, rate=300, duration=0.2, seed=6,
                          tenants=TENANTS, walk_frac=0.3)
        assert a != c

    def test_weights_shape_the_mix(self):
        pool = np.arange(50)
        trace = poisson_trace(pool, rate=2000, duration=0.5, seed=1,
                              tenants=TENANTS)
        mix = trace.mix()
        assert mix["gold"] > mix["free"]  # weight 2.0 vs 1.0

    def test_bursty_is_burstier_than_poisson(self):
        pool = np.arange(50)
        po = poisson_trace(pool, rate=200, duration=1.0, seed=3)
        bu = bursty_trace(pool, rate=200, duration=1.0, seed=3,
                          burst_factor=8.0, period=0.2, duty=0.25)
        def peak_window(trace, w=0.05):
            times = [a.time for a in trace]
            return max(sum(1 for t in times if s <= t < s + w)
                       for s in np.arange(0, 1.0, w))
        assert peak_window(bu) > peak_window(po)

    def test_validation(self):
        pool = np.arange(10)
        with pytest.raises(ValueError, match="rate"):
            poisson_trace(pool, rate=0, duration=1.0)
        with pytest.raises(ValueError, match="walk_frac"):
            poisson_trace(pool, rate=1, duration=1.0, walk_frac=2.0)
        with pytest.raises(ValueError, match="non-empty"):
            poisson_trace(np.array([]), rate=1, duration=1.0)
        with pytest.raises(ValueError, match="duty"):
            bursty_trace(pool, rate=1, duration=1.0, duty=1.5)


class TestSessionApi:
    def test_submit_drain_result(self, engine):
        session = engine.open_session(SessionConfig(slo=1.0))
        h = session.submit(Query(source=3))
        assert h.status == "queued"
        with pytest.raises(RuntimeError, match="still queued"):
            h.result()
        run = session.drain()
        assert h.done and h.slo_ok
        assert run.admitted == 1 and run.deadline_missed == 0
        vec = h.result().dense_result(engine.sharded, engine.graph.n_nodes)
        assert vec.sum() > 0

    def test_rejected_handle_raises_typed(self, engine):
        session = engine.open_session(SessionConfig(
            tenants=(TenantSpec("t", quota=1),)))
        session.submit(Query(source=1), tenant="t")
        h = session.submit(Query(source=2), tenant="t")
        assert h.rejected
        with pytest.raises(AdmissionRejected) as err:
            h.result()
        assert err.value.reason is RejectReason.QUOTA_EXCEEDED

    def test_batch_equals_engine_run_bitwise(self, engine):
        """The satellite guarantee: one code path, identical results."""
        sources = np.array([5, 9, 23, 41])
        run = engine.run(RunRequest(sources=sources, mode="batched"))
        session = engine.open_session()
        handles = [session.submit(Query(source=int(s))) for s in sources]
        session.drain()
        n = engine.graph.n_nodes
        for h in handles:
            np.testing.assert_array_equal(
                run.states[h.query.source].dense_result(engine.sharded, n),
                h.result().dense_result(engine.sharded, n))

    def test_walk_queries_resolve_to_rows(self, engine):
        session = engine.open_session()
        h = session.submit(Query(source=7, kind="walk", walk_length=5))
        session.drain()
        row = h.result()
        assert row.shape == (6,)      # walk_length + 1 incl. the root
        assert int(row[0]) == 7

    def test_mixed_batch_and_counters(self, engine):
        session = engine.open_session(SessionConfig(slo=10.0))
        hs = [session.submit(Query(source=2)),
              session.submit(Query(source=4, kind="walk", walk_length=3)),
              session.submit(Query(source=6))]
        run = session.drain()
        assert all(h.done for h in hs)
        assert run.admitted == 3
        snap = session.snapshot()
        assert snap["serve.admitted"] == 3
        assert snap["serve.completed"] == 3
        assert snap["serve.batches"] == 1
        assert snap["serve.latency.count"] == 3

    def test_cost_model_validation_and_clock(self, engine):
        cm = ServiceCostModel()
        with pytest.raises(ValueError):
            cm.service_time(n_queries=-1)
        session = engine.open_session(SessionConfig(cost_model=cm))
        session.submit(Query(source=1))
        assert session.now == 0.0
        session.drain()
        assert session.now > 0.0      # modeled service time, not wall time

    def test_empty_drain_is_a_zero_result(self, engine):
        session = engine.open_session()
        run = session.drain()
        assert run.n_queries == 0 and run.admitted == 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="mode"):
            SessionConfig(mode="bogus")
        with pytest.raises(ValueError, match="runtime"):
            SessionConfig(runtime="gpu")
        with pytest.raises(ValueError, match="slo"):
            SessionConfig(slo=-1.0)
        with pytest.raises(ValueError, match="kind"):
            Query(source=1, kind="bogus")


def _serve(engine, trace, runtime, *, chaos=False):
    cfg = SessionConfig(
        tenants=TENANTS, queue_cap=24, batch_cap=8, slo=0.05,
        runtime=runtime,
        fault_plan=FaultPlan(seed=13, drop_prob=0.08) if chaos else None,
        retry_policy=RetryPolicy(max_attempts=6, timeout=5.0)
        if chaos else None,
    )
    return serve_trace(engine, trace, cfg)


class TestRuntimeDifferential:
    """The acceptance assertion: one seeded trace, two runtimes, bitwise
    identical admission decisions, batch compositions, and results."""

    @pytest.mark.parametrize("chaos", [False, True],
                             ids=["healthy", "chaos"])
    def test_sim_equals_threads(self, engine, chaos):
        trace = poisson_trace(np.arange(engine.graph.n_nodes), rate=400,
                              duration=0.2, seed=7, tenants=TENANTS,
                              walk_frac=0.25)
        sim = _serve(engine, trace, "sim", chaos=chaos)
        thr = _serve(engine, trace, "threads", chaos=chaos)

        assert sim.session.decisions == thr.session.decisions
        assert sim.session.batch_log == thr.session.batch_log
        assert sim.row() == thr.row()
        n = engine.graph.n_nodes
        for a, b in zip(sim.handles, thr.handles):
            assert (a.status, a.latency, a.slo_ok) == \
                (b.status, b.latency, b.slo_ok)
            if not a.done:
                continue
            if a.query.kind == "sppr":
                np.testing.assert_array_equal(
                    a.result().dense_result(engine.sharded, n),
                    b.result().dense_result(engine.sharded, n))
            else:
                np.testing.assert_array_equal(a.result(), b.result())
        if chaos:
            # faults actually fired on both runtimes, identically
            sim_c = sim.session.metrics.counters()
            thr_c = thr.session.metrics.counters()
            assert sim_c["rpc.dropped_messages"] > 0
            for key in ("rpc.dropped_messages", "rpc.retries",
                        "serve.batch_retries"):
                assert sim_c.get(key, 0) == thr_c.get(key, 0), key

    def test_chaos_slows_the_serving_clock(self, engine):
        trace = poisson_trace(np.arange(engine.graph.n_nodes), rate=300,
                              duration=0.15, seed=3, tenants=TENANTS)
        healthy = _serve(engine, trace, "sim", chaos=False)
        chaos = _serve(engine, trace, "sim", chaos=True)
        # retries carry a modeled cost, so chaos serving is strictly slower
        assert chaos.clock > healthy.clock
        assert chaos.p95 >= healthy.p95
        # ... but never changes any answer
        n = engine.graph.n_nodes
        for a, b in zip(healthy.handles, chaos.handles):
            if a.done and b.done and a.query.kind == "sppr":
                np.testing.assert_array_equal(
                    a.result().dense_result(engine.sharded, n),
                    b.result().dense_result(engine.sharded, n))


class TestOverloadBehavior:
    def test_overload_produces_typed_rejections(self, engine):
        trace = bursty_trace(np.arange(engine.graph.n_nodes), rate=500,
                             duration=0.3, seed=9, tenants=TENANTS,
                             burst_factor=8.0)
        cfg = SessionConfig(tenants=TENANTS, queue_cap=8, batch_cap=4,
                            slo=0.02)
        report = serve_trace(engine, trace, cfg)
        assert report.rejected > 0
        assert report.rejected == (report.rejected_queue_full
                                   + report.rejected_quota)
        assert report.admitted + report.rejected == report.arrivals
        assert report.admitted == report.completed  # open loop drains all
        assert 0.0 <= report.attainment <= 1.0
        assert report.goodput <= report.throughput

    def test_report_row_matches_describe(self, engine):
        trace = poisson_trace(np.arange(engine.graph.n_nodes), rate=100,
                              duration=0.1, seed=2)
        report = serve_trace(engine, trace, SessionConfig(slo=0.05))
        row = report.row()
        text = report.describe()
        assert f"arrivals={row['arrivals']}" in text
        assert f"goodput={row['goodput']:.1f}/s" in text
