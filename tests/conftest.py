"""Shared pytest wiring: the tier-1 wall-clock budget.

The tier-1 selection (``pytest -m "not slow"``, the default via addopts)
must stay fast enough to run on every change.  ``pyproject.toml`` declares
the budget (``tier1_budget_seconds``); this hook asserts it, but only when
``REPRO_CI_BUDGET=1`` is set — local runs on loaded machines should not
flake on timing.
"""

from __future__ import annotations

import os
import sys
import time


def pytest_addoption(parser):
    parser.addini(
        "tier1_budget_seconds",
        "wall-clock budget for the tier-1 (not slow) selection, "
        "enforced when REPRO_CI_BUDGET=1",
        default="60",
    )


def pytest_sessionstart(session):
    session.config._repro_t0 = time.perf_counter()


def pytest_sessionfinish(session, exitstatus):
    if os.environ.get("REPRO_CI_BUDGET") != "1":
        return
    # Only the tier-1 selection carries the budget; `-m slow` or `-m ""`
    # runs are allowed to take as long as they take.
    if "not slow" not in (session.config.getoption("-m") or ""):
        return
    budget = float(session.config.getini("tier1_budget_seconds"))
    elapsed = time.perf_counter() - session.config._repro_t0
    if elapsed > budget:
        print(
            f"\nERROR: tier-1 wall-clock budget exceeded: {elapsed:.1f}s > "
            f"{budget:.0f}s (see tier1_budget_seconds in pyproject.toml)",
            file=sys.stderr,
        )
        session.exitstatus = 1
