"""Tests for inter-query batched SSPPR (MultiSSPPR) — results must match
the single-query engine within the epsilon bound, at far fewer RPCs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineConfig, GraphEngine, PPRParams, RunRequest
from repro.graph import erdos_renyi, powerlaw_cluster
from repro.partition import HashPartitioner
from repro.ppr import MultiSSPPR, forward_push_parallel
from repro.storage import build_shards

PARAMS = PPRParams()


def run_multi(sharded, sources_global, params=PARAMS):
    """Drive a MultiSSPPR directly against shards (no RPC layer)."""
    local, shard = sharded.address_of(sources_global)
    assert len(np.unique(shard)) == 1, "all sources must share a shard"
    own = int(shard[0])
    wdegs = sharded.shards[own].source_weighted_degrees(local)
    m = MultiSSPPR(local, own, params, wdegs, sharded.n_shards)
    while True:
        node_ids, shard_ids = m.pop()
        if len(node_ids) == 0:
            return m
        for j in range(sharded.n_shards):
            mask = shard_ids == j
            if not mask.any():
                continue
            infos = sharded.shards[j].get_neighbor_batch(node_ids[mask])
            m.push(infos, node_ids[mask], shard_ids[mask])


class TestMultiSSPPRState:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            MultiSSPPR([], 0, PARAMS, [], 2)
        with pytest.raises(ValueError):
            MultiSSPPR([0], 0, PARAMS, [1.0, 2.0], 2)
        with pytest.raises(ValueError):
            MultiSSPPR([0], 0, PARAMS, [-1.0], 2)
        with pytest.raises(ValueError):
            MultiSSPPR([0], 0, PARAMS, [1.0], 0)

    def test_results_for_bad_qid(self):
        m = MultiSSPPR([0, 1], 0, PARAMS, [1.0, 1.0], 2)
        with pytest.raises(ValueError):
            m.results_for(5)

    def test_total_mass_equals_n_queries(self):
        g = powerlaw_cluster(300, 6, mixing=0.2, seed=0)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        own0 = sharded.shards[0].core_global[:4]
        m = run_multi(sharded, own0)
        assert m.total_mass() == pytest.approx(4.0)

    def test_each_query_matches_reference(self):
        g = powerlaw_cluster(400, 8, mixing=0.15, seed=1)
        sharded = build_shards(g, HashPartitioner().partition(g, 3))
        sources = sharded.shards[1].core_global[:5]
        m = run_multi(sharded, sources)
        bound = 2 * PARAMS.epsilon * g.weighted_degrees.sum()
        for qid, gid in enumerate(sources.tolist()):
            dense = m.dense_result_for(qid, sharded, g.n_nodes)
            ref, _, _ = forward_push_parallel(g, gid, PARAMS)
            assert np.abs(dense - ref).sum() <= bound, qid

    def test_single_query_batch_degenerates(self):
        g = powerlaw_cluster(200, 6, seed=2)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        src = sharded.shards[0].core_global[:1]
        m = run_multi(sharded, src)
        dense = m.dense_result_for(0, sharded, g.n_nodes)
        ref, _, _ = forward_push_parallel(g, int(src[0]), PARAMS)
        bound = 2 * PARAMS.epsilon * g.weighted_degrees.sum()
        assert np.abs(dense - ref).sum() <= bound

    def test_duplicate_sources_supported(self):
        """Two queries from the same source produce identical vectors."""
        g = powerlaw_cluster(200, 6, seed=3)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        src = sharded.shards[0].core_global[0]
        m = run_multi(sharded, np.array([src, src]))
        a = m.dense_result_for(0, sharded, g.n_nodes)
        b = m.dense_result_for(1, sharded, g.n_nodes)
        np.testing.assert_allclose(a, b)


class TestEngineBatchedQueries:
    def test_matches_sequential_engine(self):
        g = powerlaw_cluster(600, 8, mixing=0.15, seed=4)
        engine = GraphEngine(g, EngineConfig(n_machines=3, seed=0))
        seq = engine.run(RunRequest(n_queries=9, keep_states=True, seed=5))
        bat = engine.run_queries_batched(
            sources=np.array(sorted(seq.states)), seed=5
        )
        bound = 2 * PARAMS.epsilon * g.weighted_degrees.sum()
        for gid in seq.states:
            a = seq.states[gid].dense_result(engine.sharded, g.n_nodes)
            b = bat.states[gid].dense_result(engine.sharded, g.n_nodes)
            assert np.abs(a - b).sum() <= bound
            assert bat.states[gid].total_mass() == pytest.approx(1.0)

    def test_fewer_rpcs_than_sequential(self):
        g = powerlaw_cluster(600, 8, mixing=0.3, seed=6)
        engine = GraphEngine(g, EngineConfig(n_machines=3, seed=0))
        seq = engine.run(RunRequest(n_queries=12, seed=7))
        bat = engine.run_queries_batched(n_queries=12, seed=7)
        assert bat.remote_requests < seq.remote_requests

    def test_result_view_surface(self):
        g = powerlaw_cluster(300, 6, seed=8)
        engine = GraphEngine(g, EngineConfig(n_machines=2, seed=0))
        run = engine.run_queries_batched(n_queries=4, seed=9)
        for gid, view in run.states.items():
            gids, values = view.results_global(engine.sharded)
            assert np.all(values > 0)
            assert view.n_touched > 0
            assert view.n_iterations > 0

    def test_missing_args_rejected(self):
        g = powerlaw_cluster(100, 4, seed=10)
        engine = GraphEngine(g, EngineConfig(n_machines=2, seed=0))
        with pytest.raises(ValueError, match="n_queries or sources"):
            engine.run_queries_batched()


class TestMultiQueryProperties:
    @given(
        n=st.integers(40, 120),
        batch=st.integers(1, 5),
        seed=st.integers(0, 15),
    )
    @settings(max_examples=12, deadline=None)
    def test_batched_equals_individual(self, n, batch, seed):
        g = erdos_renyi(n, 5, seed=seed)
        params = PPRParams(epsilon=1e-4)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        sources = sharded.shards[0].core_global[:batch]
        if len(sources) < batch:
            return
        m = run_multi(sharded, sources, params)
        assert m.total_mass() == pytest.approx(float(batch))
        bound = 2 * params.epsilon * g.weighted_degrees.sum() + 1e-12
        for qid, gid in enumerate(sources.tolist()):
            dense = m.dense_result_for(qid, sharded, n)
            ref, _, _ = forward_push_parallel(g, gid, params)
            assert np.abs(dense - ref).sum() <= bound
