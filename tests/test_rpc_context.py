"""Integration tests for the simulated RPC layer (repro.rpc.api)."""

import numpy as np
import pytest

from repro.errors import RpcError
from repro.rpc import RpcContext
from repro.rpc.rref import check_rrefs
from repro.simt import NetworkModel, Scheduler, Wait, WaitAll


class Counter:
    """Tiny remote object used as a test target."""

    def __init__(self, start=0):
        self.value = start

    def get(self):
        return self.value

    def add(self, k):
        self.value += k
        return self.value

    def echo_array(self, arr):
        return np.asarray(arr) * 2

    def fail(self):
        raise RuntimeError("handler exploded")


def make_ctx(network=None):
    sched = Scheduler()
    ctx = RpcContext(sched, network or NetworkModel())
    return sched, ctx


class TestRegistration:
    def test_duplicate_worker_rejected(self):
        sched, ctx = make_ctx()
        ctx.register_server("s0", machine_id=0)
        with pytest.raises(RpcError, match="already registered"):
            ctx.register_server("s0", machine_id=1)

    def test_unknown_worker(self):
        _, ctx = make_ctx()
        with pytest.raises(RpcError, match="unknown worker"):
            ctx.worker_info("nope")

    def test_non_server_lookup(self):
        sched, ctx = make_ctx()

        def body():
            yield Wait(sched.resolved_future(None))

        proc = sched.spawn("w0", body())
        ctx.register_worker("w0", 0, proc)
        with pytest.raises(RpcError, match="not a server"):
            ctx.server_of("w0")
        sched.run()

    def test_create_remote_and_duplicate_key(self):
        _, ctx = make_ctx()
        ctx.register_server("s0", machine_id=0)
        rref = ctx.create_remote("s0", "counter", Counter, 5)
        assert rref.local_value().value == 5
        with pytest.raises(RpcError, match="already exists"):
            ctx.create_remote("s0", "counter", Counter)


class TestLocalPath:
    def test_same_machine_call_is_synchronous(self):
        sched, ctx = make_ctx()
        ctx.register_server("s0", machine_id=0)
        rref = ctx.create_remote("s0", "counter", Counter, 10)
        results = []

        def body():
            fut = rref.rpc_async("w0", "add", 7)
            assert fut.done  # local calls resolve immediately
            value = yield Wait(fut)
            results.append(value)

        proc = sched.spawn("w0", body())
        ctx.register_worker("w0", 0, proc)
        sched.run()
        assert results == [17]
        assert ctx.local_calls == 1
        assert ctx.remote_requests == 0

    def test_local_call_charges_only_binding_overhead(self):
        net = NetworkModel(local_call_overhead=1e-3, rpc_overhead=10.0)
        sched, ctx = make_ctx(net)
        ctx.register_server("s0", machine_id=0)
        rref = ctx.create_remote("s0", "counter", Counter)

        def body():
            yield Wait(rref.rpc_async("w0", "get"))

        proc = sched.spawn("w0", body())
        ctx.register_worker("w0", 0, proc)
        sched.run()
        # far below the 10s rpc_overhead: the local path skipped the network
        assert proc.clock < 1.0


class TestRemotePath:
    def test_remote_call_returns_value(self):
        sched, ctx = make_ctx()
        ctx.register_server("s0", machine_id=0)
        rref = ctx.create_remote("s0", "counter", Counter, 100)
        results = []

        def body():
            value = yield Wait(rref.rpc_async("w1", "add", 1))
            results.append(value)

        proc = sched.spawn("w1", body())
        ctx.register_worker("w1", 1, proc)
        sched.run()
        assert results == [101]
        assert ctx.remote_requests == 1

    def test_remote_call_charges_round_trip(self):
        net = NetworkModel(rpc_overhead=1.0, tensor_wrap_cost=0.0,
                           bandwidth=1e18, latency=0.5,
                           local_call_overhead=0.0)
        sched, ctx = make_ctx(net)
        ctx.register_server("s0", machine_id=0)
        rref = ctx.create_remote("s0", "counter", Counter)

        def body():
            yield Wait(rref.rpc_async("w1", "get"))

        proc = sched.spawn("w1", body())
        ctx.register_worker("w1", 1, proc)
        sched.run()
        # issue overhead (1.0) + request transfer (1.5) + response (1.5)
        # = at least 4.0 modulo tiny payload terms; handler time ~ 0
        assert proc.clock >= 4.0 - 1e-6
        assert proc.clock < 4.1

    def test_remote_array_payload(self):
        sched, ctx = make_ctx()
        ctx.register_server("s0", machine_id=0)
        rref = ctx.create_remote("s0", "counter", Counter)
        out = []

        def body():
            arr = np.arange(5)
            doubled = yield Wait(rref.rpc_async("w1", "echo_array", arr))
            out.append(doubled)

        proc = sched.spawn("w1", body())
        ctx.register_worker("w1", 1, proc)
        sched.run()
        np.testing.assert_array_equal(out[0], [0, 2, 4, 6, 8])

    def test_handler_exception_propagates(self):
        sched, ctx = make_ctx()
        ctx.register_server("s0", machine_id=0)
        rref = ctx.create_remote("s0", "counter", Counter)
        caught = []

        def body():
            try:
                yield Wait(rref.rpc_async("w1", "fail"))
            except RuntimeError as exc:
                caught.append(str(exc))

        proc = sched.spawn("w1", body())
        ctx.register_worker("w1", 1, proc)
        sched.run()
        assert caught == ["handler exploded"]

    def test_missing_method(self):
        sched, ctx = make_ctx()
        ctx.register_server("s0", machine_id=0)
        rref = ctx.create_remote("s0", "counter", Counter)
        caught = []

        def body():
            try:
                yield Wait(rref.rpc_async("w1", "nonexistent"))
            except RpcError as exc:
                caught.append(str(exc))

        proc = sched.spawn("w1", body())
        ctx.register_worker("w1", 1, proc)
        sched.run()
        assert len(caught) == 1


class TestServerContention:
    def test_fifo_service_serializes_requests(self):
        """Two simultaneous remote calls queue on the single server thread."""

        class Slow:
            def work(self):
                # Burn a deterministic ~5ms of real CPU.
                import time
                start = time.perf_counter()
                while time.perf_counter() - start < 0.005:
                    pass
                return True

        net = NetworkModel(rpc_overhead=0.0, tensor_wrap_cost=0.0,
                           bandwidth=1e18, latency=0.0,
                           local_call_overhead=0.0)
        sched, ctx = make_ctx(net)
        ctx.register_server("s0", machine_id=0)
        rref = ctx.create_remote("s0", "slow", Slow)
        clocks = {}

        def mk(name):
            def body():
                yield Wait(rref.rpc_async(name, "work"))
                clocks[name] = sched.processes[name].clock
            return body

        for i, name in enumerate(["w1", "w2"]):
            proc = sched.spawn(name, mk(name)())
            ctx.register_worker(name, machine_id=1 + i, process=proc)
        sched.run()
        server = ctx.server_of("s0")
        assert server.requests_served == 2
        # One of the two waited for the other's ~5ms service slot.
        lo, hi = sorted(clocks.values())
        assert lo >= 0.005 - 1e-4
        assert hi >= lo + 0.004

    def test_colocated_server_charges_host(self):
        sched, ctx = make_ctx(NetworkModel.instant())

        def host_body():
            yield Wait(host_done)

        host_done = sched.resolved_future(None, delay=0.0)
        host = sched.spawn("host", host_body())
        ctx.register_worker("host", 0, host)
        ctx.register_server("s0", machine_id=0, colocated_with="host")
        rref = ctx.create_remote("s0", "counter", Counter)

        def caller_body():
            yield Wait(rref.rpc_async("w1", "add", 1))

        caller = sched.spawn("w1", caller_body())
        ctx.register_worker("w1", 1, caller)
        sched.run()
        assert host.breakdown.get("gil_contention") > 0.0


class TestAllReduce:
    def test_mean_across_members(self):
        sched, ctx = make_ctx(NetworkModel.instant())
        results = {}

        def mk(name, value):
            def body():
                fut = ctx.allreduce_mean("round0", name, 3,
                                         np.full(4, float(value)))
                mean = yield Wait(fut)
                results[name] = mean
            return body

        for i, value in enumerate([1.0, 2.0, 3.0]):
            name = f"w{i}"
            proc = sched.spawn(name, mk(name, value)())
            ctx.register_worker(name, machine_id=i, process=proc)
        sched.run()
        for arr in results.values():
            np.testing.assert_allclose(arr, 2.0)

    def test_group_size_mismatch_rejected(self):
        sched, ctx = make_ctx(NetworkModel.instant())
        fired = []

        def body():
            ctx.allreduce_mean("g", "w0", 2, np.zeros(2))
            with pytest.raises(RpcError, match="size mismatch"):
                ctx.allreduce_mean("g", "w0", 3, np.zeros(2))
            fired.append(True)
            yield Wait(sched.resolved_future(None))

        proc = sched.spawn("w0", body())
        ctx.register_worker("w0", 0, proc)
        sched.run()
        assert fired == [True]

    def test_shape_mismatch_rejected(self):
        sched, ctx = make_ctx(NetworkModel.instant())
        errors = []

        def body0():
            ctx.allreduce_mean("g", "w0", 2, np.zeros(2))
            yield Wait(sched.resolved_future(None))

        def body1():
            try:
                ctx.allreduce_mean("g", "w1", 2, np.zeros(3))
            except RpcError as exc:
                errors.append(str(exc))
            yield Wait(sched.resolved_future(None))

        p0 = sched.spawn("w0", body0())
        ctx.register_worker("w0", 0, p0)
        p1 = sched.spawn("w1", body1())
        ctx.register_worker("w1", 1, p1)
        try:
            sched.run()
        except Exception:
            pass
        assert any("shape mismatch" in e for e in errors)


class TestCheckRrefs:
    def test_valid(self):
        _, ctx = make_ctx()
        ctx.register_server("s0", 0)
        rrefs = [ctx.create_remote("s0", f"o{i}", Counter) for i in range(3)]
        check_rrefs(rrefs, 3)

    def test_wrong_count(self):
        with pytest.raises(RpcError, match="expected 2"):
            check_rrefs([], 2)

    def test_wrong_type(self):
        with pytest.raises(RpcError, match="not an RRef"):
            check_rrefs(["nope"], 1)
