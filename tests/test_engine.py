"""Integration tests for the GraphEngine facade: end-to-end distributed
SSPPR / tensor baseline / random walks on the virtual-time cluster."""

import warnings

import numpy as np
import pytest

from repro import (
    DegradationMode,
    EngineConfig,
    GraphEngine,
    OptLevel,
    PPRParams,
    RunRequest,
)
from repro.graph import powerlaw_cluster
from repro.partition import HashPartitioner
from repro.ppr import forward_push_parallel
from repro.simt.network import NetworkModel


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(600, 8, mixing=0.15, seed=42)


@pytest.fixture(scope="module")
def engine(graph):
    return GraphEngine(graph, EngineConfig(n_machines=3, procs_per_machine=2,
                                           seed=0))


class TestRunQueries:
    def test_basic_run(self, graph, engine):
        run = engine.run(RunRequest(n_queries=6, keep_states=True))
        assert run.n_queries == 6
        assert run.makespan > 0
        assert run.throughput > 0
        assert len(run.states) == 6
        assert run.remote_requests > 0

    def test_results_match_reference(self, graph, engine):
        params = PPRParams()
        run = engine.run(RunRequest(n_queries=4, keep_states=True, seed=5))
        bound = 2 * params.epsilon * graph.weighted_degrees.sum()
        for gid, state in run.states.items():
            approx = state.dense_result(engine.sharded, graph.n_nodes)
            ref, _, _ = forward_push_parallel(graph, gid, params)
            assert np.abs(approx - ref).sum() <= bound
            assert state.total_mass() == pytest.approx(1.0)

    def test_explicit_sources(self, graph, engine):
        sources = np.array([1, 2, 3])
        run = engine.run(RunRequest(sources=sources, keep_states=True))
        assert set(run.states) == {1, 2, 3}

    def test_missing_args_rejected(self, engine):
        with pytest.raises(ValueError, match="n_queries or sources"):
            engine.run(RunRequest())

    def test_phases_populated(self, engine):
        run = engine.run(RunRequest(n_queries=4))
        assert run.phases["push"] > 0
        assert run.phases["remote_fetch"] > 0
        assert sum(run.phase_ratios().values()) == pytest.approx(1.0)

    def test_deterministic_virtual_network_costs(self, graph):
        """Modeled terms are deterministic; measured compute varies, so
        compare structural counters rather than clocks."""
        e1 = GraphEngine(graph, EngineConfig(n_machines=2, seed=3))
        e2 = GraphEngine(graph, EngineConfig(n_machines=2, seed=3))
        r1 = e1.run(RunRequest(n_queries=4, seed=9))
        r2 = e2.run(RunRequest(n_queries=4, seed=9))
        assert r1.remote_requests == r2.remote_requests
        assert r1.local_calls == r2.local_calls

    def test_single_machine_no_remote_requests(self, graph):
        e = GraphEngine(graph, EngineConfig(n_machines=1))
        run = e.run(RunRequest(n_queries=3))
        assert run.remote_requests == 0
        assert run.phases["remote_fetch"] == 0.0


class TestRunRequestApi:
    def test_run_is_deterministic_for_equal_requests(self, engine):
        sources = np.array([1, 2, 3])
        new = engine.run(RunRequest(sources=sources, keep_states=True))
        old = engine.run(RunRequest(sources=sources, keep_states=True))
        assert set(new.states) == set(old.states) == {1, 2, 3}
        for gid in new.states:
            a = new.states[gid].dense_result(engine.sharded,
                                             engine.graph.n_nodes)
            b = old.states[gid].dense_result(engine.sharded,
                                             engine.graph.n_nodes)
            assert np.allclose(a, b)

    def test_run_queries_shim_removed(self, engine):
        assert not hasattr(engine, "run_queries")

    def test_run_does_not_warn(self, engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine.run(RunRequest(n_queries=2))

    def test_mode_dispatch(self, engine):
        tensor = engine.run(RunRequest(n_queries=2, mode="tensor",
                                       keep_states=True))
        batched = engine.run(RunRequest(n_queries=2, mode="batched"))
        assert len(tensor.states) == 2
        assert len(batched.states) == 2  # batched always collects

    def test_opt_override(self, graph):
        e = GraphEngine(graph, EngineConfig(n_machines=2,
                                            opt=OptLevel.OVERLAP, seed=1))
        single = e.run(RunRequest(n_queries=4, opt=OptLevel.SINGLE, seed=2))
        overlap = e.run(RunRequest(n_queries=4, seed=2))
        # per-vertex mode issues far more RPCs than the config's OVERLAP
        assert single.remote_requests > overlap.remote_requests

    def test_validation(self):
        with pytest.raises(ValueError, match="n_queries or sources"):
            RunRequest()
        with pytest.raises(ValueError, match="not both"):
            RunRequest(n_queries=2, sources=np.array([1]))
        with pytest.raises(ValueError, match="must be > 0"):
            RunRequest(n_queries=0)
        with pytest.raises(ValueError, match="mode"):
            RunRequest(n_queries=1, mode="warp")
        with pytest.raises(TypeError, match="DegradationMode"):
            RunRequest(n_queries=1, degradation="skip_remote")

    def test_request_is_frozen_and_reusable(self, engine):
        req = RunRequest(n_queries=3)
        a = engine.run(req)
        b = engine.run(req)
        assert a.n_queries == b.n_queries == 3
        with pytest.raises(AttributeError):
            req.n_queries = 5

    def test_latency_percentile_keys_are_floats(self, engine):
        run = engine.run(RunRequest(n_queries=4))
        p = run.latency_percentiles(q=(50, 90))
        assert all(isinstance(k, float) for k in p)
        assert p[50.0] <= p[90.0]

    def test_single_query_percentiles_no_warning(self, engine):
        """Regression: one latency sample must not trip NumPy warnings,
        and every percentile collapses to that sample."""
        sources = np.array([1])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run = engine.run(RunRequest(sources=sources))
            p = run.latency_percentiles()
        assert set(p) == {50.0, 90.0, 99.0}
        only = run.latencies[1]
        assert all(v == pytest.approx(only) for v in p.values())


class TestOptLevels:
    @pytest.mark.parametrize("opt", list(OptLevel))
    def test_all_levels_correct(self, graph, opt):
        cfg = EngineConfig(n_machines=2, opt=opt, seed=1)
        e = GraphEngine(graph, cfg)
        params = PPRParams(epsilon=1e-5)
        run = e.run(RunRequest(n_queries=2, keep_states=True, params=params,
                            seed=4))
        bound = 2 * params.epsilon * graph.weighted_degrees.sum()
        for gid, state in run.states.items():
            approx = state.dense_result(e.sharded, graph.n_nodes)
            ref, _, _ = forward_push_parallel(graph, gid, params)
            assert np.abs(approx - ref).sum() <= bound, f"opt={opt}"

    def test_batching_reduces_rpc_count(self, graph):
        runs = {}
        for opt in (OptLevel.SINGLE, OptLevel.BATCH):
            e = GraphEngine(graph, EngineConfig(n_machines=2, opt=opt, seed=1))
            runs[opt] = e.run(RunRequest(n_queries=2, seed=4,
                                      params=PPRParams(epsilon=1e-5)))
        assert runs[OptLevel.BATCH].remote_requests < \
            0.5 * runs[OptLevel.SINGLE].remote_requests

    def test_overlap_not_slower_than_compress(self, graph):
        """Overlap hides remote latency behind local work."""
        makespans = {}
        for opt in (OptLevel.COMPRESS, OptLevel.OVERLAP):
            e = GraphEngine(graph, EngineConfig(n_machines=2, opt=opt, seed=1))
            makespans[opt] = e.run(RunRequest(n_queries=4, seed=4)).makespan
        assert makespans[OptLevel.OVERLAP] <= 1.2 * makespans[OptLevel.COMPRESS]


class TestTensorBaseline:
    def test_tensor_matches_engine(self, graph, engine):
        params = PPRParams(epsilon=1e-5)
        a = engine.run(RunRequest(sources=np.array([10, 20]), keep_states=True,
                               params=params))
        b = engine.run_tensor_queries(sources=np.array([10, 20]),
                                      keep_states=True, params=params)
        bound = 2 * params.epsilon * graph.weighted_degrees.sum()
        for gid in (10, 20):
            da = a.states[gid].dense_result(engine.sharded, graph.n_nodes)
            db = b.states[gid].dense_result()
            assert np.abs(da - db).sum() <= bound

    @pytest.mark.slow
    def test_tensor_pop_cost_scales_with_v(self):
        """The tensor baseline's pop is |V|-proportional (Figure 6 claim):
        per-iteration pop time grows with graph size even at fixed
        touched-set structure."""
        small = powerlaw_cluster(1000, 6, mixing=0.05, seed=1)
        big = powerlaw_cluster(60_000, 6, mixing=0.05, seed=1)
        per_iter = {}
        for name, g in (("small", small), ("big", big)):
            e = GraphEngine(g, EngineConfig(
                n_machines=2, partitioner=HashPartitioner(), seed=1,
            ))
            run = e.run_tensor_queries(n_queries=3, seed=2, keep_states=True)
            iters = sum(s.n_iterations for s in run.states.values())
            per_iter[name] = run.phases["pop"] / iters
        assert per_iter["big"] > 2 * per_iter["small"]


class TestRandomWalks:
    def test_walks_shape_and_validity(self, graph, engine):
        run = engine.run_random_walks(n_roots=9, walk_length=4)
        assert run.walks.shape == (9, 5)
        np.testing.assert_array_equal(np.sort(run.walks[:, 0]),
                                      np.sort(run.roots))
        for i in range(9):
            for s in range(4):
                u, v = run.walks[i, s], run.walks[i, s + 1]
                assert u == v or graph.has_arc(u, v)

    def test_walk_throughput_positive(self, engine):
        run = engine.run_random_walks(n_roots=4, walk_length=3)
        assert run.throughput > 0


class TestGilContentionAblation:
    def test_colocated_server_steals_host_time(self, graph):
        """Under colocation the server's service time is charged to its
        host computing process too (the GIL model); measured wall-clock
        noise makes makespan comparisons flaky, so assert the contention
        charge directly."""
        base = EngineConfig(n_machines=2, procs_per_machine=2, seed=1)
        coloc = EngineConfig(n_machines=2, procs_per_machine=2, seed=1,
                             colocate_server=True)
        t_base = GraphEngine(graph, base).run(RunRequest(n_queries=8, seed=3))
        t_coloc = GraphEngine(graph, coloc).run(RunRequest(n_queries=8, seed=3))
        # gil_contention is not a mapped phase -> lands in "other"
        assert t_base.phases["other"] == 0.0
        assert t_coloc.phases["other"] > 0.0


class TestConfigValidation:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            EngineConfig(n_machines=0)
        with pytest.raises(ValueError):
            EngineConfig(procs_per_machine=0)

    def test_prebuilt_shards_mismatch(self, graph):
        from repro.storage import build_shards
        sharded = build_shards(graph, HashPartitioner().partition(graph, 2))
        with pytest.raises(ValueError, match="prebuilt"):
            GraphEngine(graph, EngineConfig(n_machines=4), sharded=sharded)

    def test_prebuilt_shards_used(self, graph):
        from repro.storage import build_shards
        sharded = build_shards(graph, HashPartitioner().partition(graph, 2))
        e = GraphEngine(graph, EngineConfig(n_machines=2), sharded=sharded)
        assert e.sharded is sharded

    def test_instant_network(self, graph):
        cfg = EngineConfig(n_machines=2, network=NetworkModel.instant())
        run = GraphEngine(graph, cfg).run(RunRequest(n_queries=2))
        assert run.phases["remote_fetch"] < run.phases["push"]
