"""Unit + property tests for repro.graph.csr."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph import CSRGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(3, [0, 1], [1, 2], [1.0, 2.0])
        assert g.n_nodes == 3
        assert g.n_arcs == 4  # symmetrized
        np.testing.assert_array_equal(g.neighbors(1), [0, 2])

    def test_symmetrize_false_keeps_direction(self):
        g = CSRGraph.from_edges(3, [0], [1], symmetrize=False)
        assert g.n_arcs == 1
        assert g.has_arc(0, 1)
        assert not g.has_arc(1, 0)

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(3, [0, 1], [0, 2])
        assert not g.has_arc(0, 0)
        assert g.has_arc(1, 2)

    def test_duplicate_arcs_merged(self):
        g = CSRGraph.from_edges(2, [0, 0, 0], [1, 1, 1], [5.0, 7.0, 9.0])
        assert g.n_arcs == 2
        assert g.neighbor_weights(0)[0] == 9.0  # max weight kept

    def test_default_unit_weights(self):
        g = CSRGraph.from_edges(2, [0], [1])
        np.testing.assert_array_equal(g.weights, [1.0, 1.0])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphFormatError, match="out of range"):
            CSRGraph.from_edges(2, [0], [5])

    def test_invalid_indptr_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(2, np.array([0, 2, 1]), np.array([0, 1]), np.ones(2))

    def test_indptr_tail_mismatch_rejected(self):
        with pytest.raises(GraphFormatError, match="indptr"):
            CSRGraph(2, np.array([0, 1, 3]), np.array([0]), np.ones(1))

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphFormatError, match="negative"):
            CSRGraph.from_edges(2, [0], [1], [-1.0])

    def test_empty_graph(self):
        g = CSRGraph.from_edges(5, [], [])
        assert g.n_arcs == 0
        assert g.out_degree(3) == 0
        np.testing.assert_array_equal(g.weighted_degrees, np.zeros(5))

    def test_from_scipy_roundtrip(self):
        g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
        g2 = CSRGraph.from_scipy(g.to_scipy())
        np.testing.assert_array_equal(g.indptr, g2.indptr)
        np.testing.assert_array_equal(g.indices, g2.indices)
        np.testing.assert_allclose(g.weights, g2.weights)

    def test_from_scipy_nonsquare_rejected(self):
        import scipy.sparse as sp
        with pytest.raises(GraphFormatError, match="square"):
            CSRGraph.from_scipy(sp.csr_matrix((2, 3)))


class TestAccessors:
    @pytest.fixture()
    def weighted_triangle(self):
        # 0-1 (w 2), 1-2 (w 3), 0-2 (w 5)
        return CSRGraph.from_edges(3, [0, 1, 0], [1, 2, 2], [2.0, 3.0, 5.0])

    def test_weighted_degrees(self, weighted_triangle):
        np.testing.assert_allclose(
            weighted_triangle.weighted_degrees, [7.0, 5.0, 8.0]
        )

    def test_out_degree_scalar_and_array(self, weighted_triangle):
        assert weighted_triangle.out_degree(0) == 2
        np.testing.assert_array_equal(
            weighted_triangle.out_degree(), [2, 2, 2]
        )

    def test_neighbors_sorted(self, weighted_triangle):
        np.testing.assert_array_equal(weighted_triangle.neighbors(2), [0, 1])

    def test_is_symmetric(self, weighted_triangle):
        assert weighted_triangle.is_symmetric()
        directed = CSRGraph.from_edges(2, [0], [1], symmetrize=False)
        assert not directed.is_symmetric()

    def test_transition_matrix_rows_sum_to_one(self, weighted_triangle):
        p = weighted_triangle.transition_matrix()
        np.testing.assert_allclose(np.asarray(p.sum(axis=1)).ravel(), 1.0)

    def test_transition_matrix_zero_row_for_isolated(self):
        g = CSRGraph.from_edges(3, [0], [1])  # node 2 isolated
        p = g.transition_matrix()
        assert p[2].nnz == 0


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    m = draw(st.integers(min_value=0, max_value=60))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, src, dst


class TestProperties:
    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_symmetrized_graph_is_symmetric(self, data):
        n, src, dst = data
        g = CSRGraph.from_edges(n, src, dst)
        assert g.is_symmetric()

    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_weighted_degree_matches_row_sums(self, data):
        n, src, dst = data
        g = CSRGraph.from_edges(n, src, dst)
        expected = np.asarray(g.to_scipy().sum(axis=1)).ravel()
        np.testing.assert_allclose(g.weighted_degrees, expected)

    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_no_self_loops_or_duplicates(self, data):
        n, src, dst = data
        g = CSRGraph.from_edges(n, src, dst)
        for v in range(n):
            nbrs = g.neighbors(v)
            assert v not in nbrs
            assert len(np.unique(nbrs)) == len(nbrs)

    @given(random_edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_arc_count_even_after_symmetrize(self, data):
        n, src, dst = data
        g = CSRGraph.from_edges(n, src, dst)
        assert g.n_arcs % 2 == 0
