"""Tests for distributed weakly-connected components (label propagation)."""

import numpy as np
import pytest

from repro import EngineConfig
from repro.engine.cluster import SimCluster
from repro.graph import CSRGraph, erdos_renyi, powerlaw_cluster
from repro.partition import HashPartitioner, MetisLitePartitioner
from repro.storage import DistGraphStorage, build_shards
from repro.walk.wcc import WccState, distributed_wcc, single_machine_wcc
from hypothesis import given, settings
from hypothesis import strategies as st


def run_wcc_all_machines(graph, n_machines, partitioner=None):
    """Every machine seeds its own core nodes; union the label tables."""
    part = partitioner or MetisLitePartitioner(seed=0)
    sharded = build_shards(graph, part.partition(graph, n_machines))
    cluster = SimCluster(sharded, EngineConfig(n_machines=n_machines))
    names = []
    for m in range(n_machines):
        name = f"compute:{m}.0"
        g = DistGraphStorage(cluster.rrefs, m, name)
        seeds = np.arange(sharded.shards[m].n_core)

        def driver(g=g, seeds=seeds, name=name):
            proc = cluster.scheduler.processes[name]
            state = yield from distributed_wcc(g, proc, seeds)
            return state
        cluster.spawn_compute(m, 0, driver())
        names.append(name)
    cluster.run()
    # union: take min label per node across machines
    labels = np.full(graph.n_nodes, np.iinfo(np.int64).max, dtype=np.int64)
    for name in names:
        state = cluster.scheduler.result_of(name)
        keys, labs = state.results()
        gids = sharded.global_of(keys // sharded.n_shards,
                                 keys % sharded.n_shards)
        np.minimum.at(labels, gids, labs)
    # canonicalize label keys -> the min *global id* in each class
    out = np.empty(graph.n_nodes, dtype=np.int64)
    for lab in np.unique(labels):
        members = np.flatnonzero(labels == lab)
        out[members] = members.min()
    return out


class TestWccState:
    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            WccState(np.array([0]), 0, 0)

    def test_single_component_graph(self):
        g = powerlaw_cluster(150, 6, seed=0)
        got = run_wcc_all_machines(g, 2)
        ref = single_machine_wcc(g)
        np.testing.assert_array_equal(got, ref)

    def test_fragments(self):
        g = CSRGraph.from_edges(7, [0, 1, 3, 5], [1, 2, 4, 6])
        got = run_wcc_all_machines(g, 2, partitioner=HashPartitioner())
        ref = single_machine_wcc(g)
        np.testing.assert_array_equal(got, ref)

    @given(n=st.integers(15, 60), k=st.integers(1, 3), seed=st.integers(0, 10))
    @settings(max_examples=8, deadline=None)
    def test_matches_reference(self, n, k, seed):
        g = erdos_renyi(n, 2, seed=seed)
        got = run_wcc_all_machines(g, k, partitioner=HashPartitioner())
        ref = single_machine_wcc(g)
        np.testing.assert_array_equal(got, ref)
