"""Unit tests for repro.utils.timer."""

import time

import pytest

from repro.utils.timer import CategoryTimer, Stopwatch, TimeBreakdown


class TestStopwatch:
    def test_measures_nonnegative(self):
        with Stopwatch() as sw:
            pass
        assert sw.elapsed >= 0.0

    def test_measures_sleep(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009

    def test_lap_restarts(self):
        sw = Stopwatch()
        sw.restart()
        first = sw.lap()
        second = sw.lap()
        assert first >= 0.0 and second >= 0.0


class TestTimeBreakdown:
    def test_charge_accumulates(self):
        bd = TimeBreakdown()
        bd.charge("push", 1.0)
        bd.charge("push", 0.5)
        bd.charge("fetch", 2.0)
        assert bd.get("push") == pytest.approx(1.5)
        assert bd.get("fetch") == pytest.approx(2.0)
        assert bd.total() == pytest.approx(3.5)

    def test_unknown_category_is_zero(self):
        assert TimeBreakdown().get("nope") == 0.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            TimeBreakdown().charge("x", -0.1)

    def test_merge(self):
        a = TimeBreakdown()
        a.charge("x", 1.0)
        b = TimeBreakdown()
        b.charge("x", 2.0)
        b.charge("y", 3.0)
        a.merge(b)
        assert a.get("x") == pytest.approx(3.0)
        assert a.get("y") == pytest.approx(3.0)

    def test_as_dict_is_copy(self):
        bd = TimeBreakdown()
        bd.charge("x", 1.0)
        d = bd.as_dict()
        d["x"] = 99.0
        assert bd.get("x") == pytest.approx(1.0)


class TestCategoryTimer:
    def test_charge_context_manager(self):
        t = CategoryTimer()
        with t.charge("work"):
            time.sleep(0.005)
        assert t.breakdown.get("work") >= 0.004

    def test_on_charge_callback(self):
        seen = []
        t = CategoryTimer(on_charge=lambda cat, dt: seen.append((cat, dt)))
        t.charge_seconds("net", 0.25)
        assert seen == [("net", 0.25)]
        assert t.breakdown.get("net") == pytest.approx(0.25)

    def test_shared_breakdown(self):
        bd = TimeBreakdown()
        t1 = CategoryTimer(breakdown=bd)
        t2 = CategoryTimer(breakdown=bd)
        t1.charge_seconds("a", 1.0)
        t2.charge_seconds("a", 1.0)
        assert bd.get("a") == pytest.approx(2.0)
