"""Validation and property tests for the wire formats (NeighborBatch,
NeighborLists, VertexProp) and DDP replica synchronization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShardError
from repro.graph import erdos_renyi, powerlaw_cluster
from repro.partition import HashPartitioner
from repro.storage import build_shards
from repro.storage.neighbor_batch import NeighborBatch, NeighborLists


class TestNeighborBatchValidation:
    def good_args(self):
        return dict(
            indptr=np.array([0, 2, 3]),
            local_ids=np.array([0, 1, 2]),
            shard_ids=np.array([0, 0, 1]),
            global_ids=np.array([5, 6, 7]),
            weights=np.ones(3),
            weighted_degrees=np.ones(3),
            source_wdeg=np.ones(2),
        )

    def test_valid(self):
        b = NeighborBatch(**self.good_args())
        assert b.n_sources == 2
        assert b.n_entries == 3

    def test_indptr_span_mismatch(self):
        args = self.good_args()
        args["indptr"] = np.array([0, 2, 5])
        with pytest.raises(ShardError, match="indptr"):
            NeighborBatch(**args)

    def test_field_length_mismatch(self):
        args = self.good_args()
        args["weights"] = np.ones(2)
        with pytest.raises(ShardError, match="weights"):
            NeighborBatch(**args)

    def test_source_wdeg_mismatch(self):
        args = self.good_args()
        args["source_wdeg"] = np.ones(5)
        with pytest.raises(ShardError, match="source_wdeg"):
            NeighborBatch(**args)


class TestNeighborListsValidation:
    def test_length_mismatch(self):
        with pytest.raises(ShardError, match="source_wdeg"):
            NeighborLists([], np.ones(2))

    def test_empty(self):
        lists = NeighborLists([], np.empty(0))
        indptr, *arrays = lists.to_arrays()
        assert len(indptr) == 1
        assert all(len(a) == 0 for a in arrays)
        nbytes, n_tensors = lists.rpc_payload()
        assert n_tensors == 1  # just the source_wdeg array

    def test_n_entries(self):
        entries = [
            (np.array([1, 2]), np.zeros(2, np.int64), np.array([1, 2]),
             np.ones(2), np.ones(2)),
            (np.array([3]), np.zeros(1, np.int64), np.array([3]),
             np.ones(1), np.ones(1)),
        ]
        lists = NeighborLists(entries, np.ones(2))
        assert lists.n_entries == 3


class TestFormatEquivalenceProperties:
    @given(n=st.integers(10, 80), k=st.integers(1, 4), seed=st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_three_formats_agree(self, n, k, seed):
        """VertexProp, NeighborBatch, NeighborLists carry identical data."""
        g = erdos_renyi(n, 4, seed=seed)
        sharded = build_shards(g, HashPartitioner().partition(g, k))
        shard = sharded.shards[seed % k]
        if shard.n_core == 0:
            return
        rng = np.random.default_rng(seed)
        ids = rng.choice(shard.n_core, size=min(5, shard.n_core),
                         replace=False)
        a = shard.get_vertex_props(ids).to_arrays()
        b = shard.get_neighbor_batch(ids).to_arrays()
        c = shard.get_neighbor_lists(ids).to_arrays()
        for x, y, z in zip(a, b, c):
            np.testing.assert_array_equal(x, y)
            np.testing.assert_array_equal(x, z)

    @given(n=st.integers(10, 60), seed=st.integers(0, 10))
    @settings(max_examples=15, deadline=None)
    def test_payload_ordering(self, n, seed):
        """Compressed responses always cost fewer tensors than uncompressed
        (for batches of more than one node)."""
        g = erdos_renyi(n, 4, seed=seed)
        sharded = build_shards(g, HashPartitioner().partition(g, 1))
        shard = sharded.shards[0]
        ids = np.arange(min(4, shard.n_core))
        if len(ids) < 2:
            return
        _, compressed = shard.get_neighbor_batch(ids).rpc_payload()
        _, uncompressed = shard.get_neighbor_lists(ids).rpc_payload()
        assert compressed < uncompressed


class TestDdpReplicaSync:
    def test_replicas_bit_identical_after_training(self):
        """The DDP guarantee: identical init + averaged gradients =>
        identical replicas at every step, hence at the end."""
        from repro.engine.config import EngineConfig
        from repro.gnn.train import make_community_dataset, run_distributed_training
        g = powerlaw_cluster(900, 8, mixing=0.1, n_communities=4, seed=11)
        feats, labels = make_community_dataset(g, n_communities=4,
                                               feature_dim=8, seed=12)
        history = run_distributed_training(
            g, feats, labels, EngineConfig(n_machines=3),
            n_steps=4, batch_size=4, topk=12, seed=13,
        )
        assert len(history.replica_states) == 3
        reference = history.replica_states[0]
        for replica in history.replica_states[1:]:
            for p_ref, p_other in zip(reference, replica):
                np.testing.assert_allclose(p_ref, p_other, atol=1e-12)
