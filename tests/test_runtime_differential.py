"""Differential testing: virtual-time scheduler vs real threads.

The same driver coroutines, the same ``ShardedGraph``, the same
``FaultPlan`` — executed once on the deterministic virtual-time
scheduler (via ``engine.run``) and once on :class:`ThreadRuntime` with a
harness that mirrors ``engine.run``'s deployment (same worker names,
same query assignment, same storage options).  Because fault decisions
are keyed on (seed, caller, per-caller call index, attempt) — never on
time — and the unified metrics registry uses one counter namespace on
both runtimes, the two executions must agree on:

* the result vectors, exactly (bit-for-bit — same arithmetic, same
  order, timing-independent);
* every ``rpc.*`` counter, including the injected-fault accounting.
"""

import numpy as np
import pytest

from repro.engine import EngineConfig, GraphEngine, RunRequest
from repro.engine.query import assign_queries, multi_query_driver, \
    sample_sources
from repro.graph import powerlaw_cluster
from repro.ppr import OptLevel, PPRParams
from repro.rpc import RetryPolicy, ThreadRuntime
from repro.simt import FaultPlan
from repro.storage import DistGraphStorage, FetchCache, NeighborFetchService

PARAMS = PPRParams(epsilon=1e-5)

# Every counter the RPC layer maintains.  ``rpc.latency`` is a histogram
# (virtual seconds vs real seconds) and deliberately not part of the
# cross-runtime contract; ``counters()`` never includes histograms.
RPC_COUNTERS = [
    "rpc.calls",
    "rpc.calls_local",
    "rpc.calls_remote",
    "rpc.request_bytes",
    "rpc.response_bytes",
    "rpc.retries",
    "rpc.timeouts",
    "rpc.dropped_messages",
    "rpc.faults.drop",
    "rpc.faults.timeout",
    "rpc.faults.retry",
]


@pytest.fixture(scope="module")
def engine():
    graph = powerlaw_cluster(500, 6, mixing=0.2, seed=11)
    return GraphEngine(graph, EngineConfig(n_machines=2))


def run_threaded(engine, sources, *, fault_plan=None, retry_policy=None,
                 fetch=True, sanitize=False):
    """Mirror ``engine.run``'s deployment on real threads.

    Same server/worker names, same query assignment, same storage
    options — so each caller issues the identical remote-call sequence
    and the FaultPlan replays the identical drop decisions.  ``fetch``
    mirrors the engine's fetch-layer wrapping (one shared FetchCache per
    machine) with the config's default knobs.
    """
    cfg = engine.config
    sharded = engine.sharded
    runtime = ThreadRuntime(fault_plan=fault_plan, retry_policy=retry_policy,
                            sanitize=sanitize)
    rrefs = []
    for m in range(cfg.n_machines):
        runtime.register_server(cfg.server_name(m), m)
        rrefs.append(runtime.create_remote(
            cfg.server_name(m), "storage",
            lambda shard=sharded.shards[m]: shard,
        ))
    states: dict[int, object] = {}
    fetch_caches: dict[int, FetchCache] = {}
    try:
        for (machine, p), chunk in assign_queries(
                sharded, sources, cfg.procs_per_machine).items():
            name = cfg.worker_name(machine, p)
            proc = runtime.register_worker(name, machine)
            g = DistGraphStorage(rrefs, machine, name, compress=True)
            if fetch and (cfg.fetch_split or cfg.fetch_cache_bytes > 0):
                fc = fetch_caches.get(machine)
                if fc is None:
                    fc = fetch_caches[machine] = FetchCache(
                        cfg.fetch_cache_bytes,
                        sanitizer=runtime.sanitizer,
                    )
                g = NeighborFetchService(
                    g, fc, split=cfg.fetch_split,
                    coalesce=cfg.fetch_coalesce,
                    metrics=runtime.obs.metrics,
                )
            runtime.spawn(name, multi_query_driver(
                g, proc, chunk, sharded, PARAMS,
                opt=OptLevel.OVERLAP, collect=states,
            ))
        runtime.join(timeout=180)
    finally:
        runtime.shutdown()
    return runtime, states


def sim_request(sources, **overrides):
    return RunRequest(sources=sources, params=PARAMS,
                      opt=OptLevel.OVERLAP, keep_states=True, **overrides)


def dense(states, sharded, n_nodes):
    return {gid: s.dense_result(sharded, n_nodes)
            for gid, s in states.items()}


class TestHealthyDifferential:
    def test_results_and_counters_identical(self, engine):
        sources = sample_sources(engine.sharded, 8, seed=0)
        sim = engine.run(sim_request(sources))
        runtime, thread_states = run_threaded(engine, sources)

        n = engine.graph.n_nodes
        sim_vecs = dense(sim.states, engine.sharded, n)
        thr_vecs = dense(thread_states, engine.sharded, n)
        assert sim_vecs.keys() == thr_vecs.keys()
        for gid in sim_vecs:
            np.testing.assert_array_equal(sim_vecs[gid], thr_vecs[gid])

        sim_counters = sim.obs.metrics.counters()
        thr_counters = runtime.obs.metrics.counters()
        for key in ("rpc.calls", "rpc.calls_local", "rpc.calls_remote",
                    "rpc.request_bytes", "rpc.response_bytes",
                    "fetch.requests", "fetch.cache_hits", "fetch.halo_hits",
                    "fetch.misses", "fetch.coalesced", "fetch.bytes_saved"):
            assert sim_counters.get(key, 0) == thr_counters.get(key, 0), key
        # the fault counters never appeared on either side
        for key in ("rpc.retries", "rpc.dropped_messages", "rpc.giveups"):
            assert sim_counters.get(key, 0) == 0
            assert thr_counters.get(key, 0) == 0

    def test_legacy_counters_agree_with_registry(self, engine):
        sources = sample_sources(engine.sharded, 4, seed=1)
        runtime, _ = run_threaded(engine, sources)
        c = runtime.obs.metrics.counters()
        assert c["rpc.calls_remote"] == runtime.remote_requests
        assert c["rpc.calls_local"] == runtime.local_calls


class TestFaultyDifferential:
    def test_same_faultplan_same_results_same_counters(self, engine):
        """The acceptance assertion: one FaultPlan, two runtimes, equal
        result vectors and equal retry/timeout/drop counters."""
        sources = sample_sources(engine.sharded, 8, seed=0)
        plan = FaultPlan(seed=13, drop_prob=0.15)
        policy = RetryPolicy(max_attempts=6, timeout=5.0)

        sim = engine.run(sim_request(
            sources, fault_plan=plan, retry_policy=policy))
        runtime, thread_states = run_threaded(
            engine, sources, fault_plan=plan, retry_policy=policy)

        # faults actually fired, and were survived, on both runtimes
        assert sim.retries > 0
        assert runtime.retries > 0

        n = engine.graph.n_nodes
        sim_vecs = dense(sim.states, engine.sharded, n)
        thr_vecs = dense(thread_states, engine.sharded, n)
        assert sim_vecs.keys() == thr_vecs.keys()
        for gid in sim_vecs:
            np.testing.assert_array_equal(sim_vecs[gid], thr_vecs[gid])

        sim_counters = sim.obs.metrics.counters()
        thr_counters = runtime.obs.metrics.counters()
        for key in RPC_COUNTERS:
            assert sim_counters.get(key, 0) == thr_counters.get(key, 0), key
        # and the legacy int fields tell the same story
        assert sim.retries == runtime.retries
        assert sim.timeouts == runtime.timeouts
        assert sim.dropped_messages == runtime.dropped_messages

    def test_faulty_equals_healthy_results(self, engine):
        """Dropped-and-retried messages never change the answer."""
        sources = sample_sources(engine.sharded, 6, seed=2)
        healthy = engine.run(sim_request(sources))
        faulty = engine.run(sim_request(
            sources, fault_plan=FaultPlan(seed=5, drop_prob=0.2),
            retry_policy=RetryPolicy(max_attempts=8, timeout=5.0)))
        assert faulty.retries > 0
        n = engine.graph.n_nodes
        h = dense(healthy.states, engine.sharded, n)
        f = dense(faulty.states, engine.sharded, n)
        for gid in h:
            np.testing.assert_array_equal(h[gid], f[gid])

    def test_thread_replay_is_deterministic(self, engine):
        sources = sample_sources(engine.sharded, 6, seed=3)
        plan = FaultPlan(seed=21, drop_prob=0.15)
        policy = RetryPolicy(max_attempts=6, timeout=5.0)
        a, _ = run_threaded(engine, sources, fault_plan=plan,
                            retry_policy=policy)
        b, _ = run_threaded(engine, sources, fault_plan=plan,
                            retry_policy=policy)
        assert a.obs.metrics.counters() == b.obs.metrics.counters()
        assert a.dropped_messages > 0
        assert a.dropped_messages == b.dropped_messages


class TestFetchLayerDifferential:
    """The fetch layer never changes answers — only how they travel."""

    def test_fetch_on_off_bitwise_identical_sim(self, engine):
        sources = sample_sources(engine.sharded, 8, seed=4)
        on = engine.run(sim_request(sources))
        off = engine.run(sim_request(sources, fetch_split=False,
                                     fetch_cache_bytes=0))
        n = engine.graph.n_nodes
        on_vecs = dense(on.states, engine.sharded, n)
        off_vecs = dense(off.states, engine.sharded, n)
        assert on_vecs.keys() == off_vecs.keys()
        for gid in on_vecs:
            np.testing.assert_array_equal(on_vecs[gid], off_vecs[gid])
        # ... and travels less: the hot-vertex cache absorbs repeats
        on_c = on.obs.metrics.counters()
        off_c = off.obs.metrics.counters()
        assert on.remote_requests < off.remote_requests
        assert on_c["rpc.response_bytes"] < off_c["rpc.response_bytes"]
        assert on_c["fetch.cache_hits"] > 0
        assert "fetch.requests" not in off_c

    def test_fetch_on_off_bitwise_identical_threads(self, engine):
        sources = sample_sources(engine.sharded, 8, seed=4)
        _, on_states = run_threaded(engine, sources, fetch=True)
        _, off_states = run_threaded(engine, sources, fetch=False)
        n = engine.graph.n_nodes
        on_vecs = dense(on_states, engine.sharded, n)
        off_vecs = dense(off_states, engine.sharded, n)
        assert on_vecs.keys() == off_vecs.keys()
        for gid in on_vecs:
            np.testing.assert_array_equal(on_vecs[gid], off_vecs[gid])

    def test_sanitized_threads_clean_through_coalescing(self):
        """Two procs per machine hammer one shared FetchCache: the lockset
        detector must see accesses but no discipline violations."""
        graph = powerlaw_cluster(400, 6, mixing=0.3, seed=7)
        engine = GraphEngine(graph, EngineConfig(
            n_machines=2, procs_per_machine=2, halo_hops=2,
        ))
        sources = sample_sources(engine.sharded, 12, seed=5)
        runtime, states = run_threaded(engine, sources, sanitize=True)
        assert len(states) == len(sources)
        assert runtime.sanitizer is not None
        assert runtime.sanitizer.accesses > 0
        assert list(runtime.sanitizer.report()) == []


class TestDoctorDifferential:
    """``DiagnosisReport.differential_view()``: bitwise across runtimes.

    The doctor's count-derived projection — fault counters, cache
    counts, heat-based straggler attribution, query/path counts, the
    final timeline sample — must replay identically on the virtual-time
    scheduler and on :class:`ThreadRuntime` for the same seed and fault
    plan.  Durations stay out of the view by design.
    """

    def _both(self, engine, request):
        from repro.obs.analysis import diagnose
        from repro.serving.session import Session, SessionConfig

        sim = engine.run(request)
        thr = Session(engine, SessionConfig(runtime="threads")).run(request)
        return diagnose(sim), diagnose(thr)

    def test_healthy_reports_agree(self, engine):
        sources = sample_sources(engine.sharded, 8, seed=0)
        sim, thr = self._both(engine, sim_request(
            sources, trace=True, timeline=0.05))
        assert sim.has_trace and thr.has_trace
        assert sim.n_paths == len(sources)
        view = sim.differential_view()
        assert view == thr.differential_view()
        # the timeline's last sample joined the contract
        assert view["timeline_last"] is not None
        assert view["timeline_last"]["rpc.calls"] > 0

    def test_chaos_reports_agree(self, engine):
        sources = sample_sources(engine.sharded, 8, seed=0)
        sim, thr = self._both(engine, sim_request(
            sources, trace=True, timeline=0.05,
            fault_plan=FaultPlan(seed=13, drop_prob=0.15),
            retry_policy=RetryPolicy(max_attempts=6, timeout=5.0)))
        view = sim.differential_view()
        assert view == thr.differential_view()
        # faults actually fired and landed in the shared view
        assert view["fault_counters"]["rpc.dropped_messages"] > 0
        # both sides kept the books clean on the duration side too
        assert sim.conservation_error <= 1e-9
        assert thr.conservation_error <= 1e-9
        assert sim.paths_within_makespan and thr.paths_within_makespan


class TestStreamingDifferential:
    """Same event stream (+ FaultPlan), both runtimes: same everything.

    A full streaming session — publish, interleaved queries and update
    batches, incremental refresh, an epoch rebalance — replayed on the
    virtual-time scheduler and on real threads must agree on the
    published ``(p, r)`` pairs bit-for-bit, on every ``stream.*`` /
    ``rebalance.*`` counter, on the planned rebalance decisions, and on
    the final serving clock.
    """

    PUBLISH = [3, 17, 42]
    STREAM_COUNTERS = [
        "stream.published", "stream.batches", "stream.queries",
        "stream.arcs_inserted", "stream.arcs_deleted",
        "stream.arcs_reweighted", "stream.batches_committed",
        "stream.staged_rows", "stream.refreshes",
        "stream.refresh_corrections", "stream.refresh_pushes",
        "rebalance.epochs", "rebalance.migrations_planned",
        "rebalance.replications_planned", "rebalance.rows_installed",
        "rebalance.bytes_copied",
    ]

    def _run(self, runtime, *, fault_plan=None, retry_policy=None,
             timeline=False):
        from repro.stream import (RebalancePolicy, StreamConfig,
                                  StreamEvent, StreamingSession,
                                  TemporalEdgeStream)

        graph = powerlaw_cluster(200, 5, mixing=0.25, seed=19)
        engine = GraphEngine(graph, EngineConfig(n_machines=3, seed=0,
                                                 halo_hops=2))
        session = StreamingSession(engine, StreamConfig(
            runtime=runtime, params=PARAMS, refresh_every=1,
            fault_plan=fault_plan, retry_policy=retry_policy,
            rebalance=RebalancePolicy(top_k=6, min_heat=2),
            timeline=timeline,
        ))
        session.publish(self.PUBLISH)
        stream = TemporalEdgeStream(graph, seed=23, batch_size=12)
        events = []
        for i, batch in enumerate(stream.batches(4)):
            events.append(StreamEvent("query",
                                      source=self.PUBLISH[i % 3]))
            events.append(StreamEvent("update", batch=batch))
        events.append(StreamEvent("rebalance"))
        report = session.run_stream(events)
        return session, report

    def _assert_sessions_agree(self, sim, thr):
        sim_sess, sim_report = sim
        thr_sess, thr_report = thr
        for gid in self.PUBLISH:
            p_sim, r_sim = sim_sess.published(gid)
            p_thr, r_thr = thr_sess.published(gid)
            np.testing.assert_array_equal(p_sim, p_thr)
            np.testing.assert_array_equal(r_sim, r_thr)
        sim_c = sim_sess.metrics.counters()
        thr_c = thr_sess.metrics.counters()
        for key in self.STREAM_COUNTERS:
            assert sim_c.get(key, 0) == thr_c.get(key, 0), key
        sim_plans = [[(d.vertex, d.action, d.src_shard, d.dst_shards)
                      for d in rep.decisions]
                     for rep in sim_report.rebalance_reports]
        thr_plans = [[(d.vertex, d.action, d.src_shard, d.dst_shards)
                      for d in rep.decisions]
                     for rep in thr_report.rebalance_reports]
        assert sim_plans == thr_plans
        assert sim_report.clock == thr_report.clock
        assert sim_report.n_applied == thr_report.n_applied

    def test_healthy_stream_bitwise_identical(self):
        sim = self._run("sim")
        thr = self._run("threads")
        sim_report = sim[1]
        assert sim_report.n_batches == 4
        assert sim_report.n_applied == 4
        assert sim_report.n_queries == 4
        # the epoch actually rebalanced something
        assert any(sim_report.rebalance_reports)
        self._assert_sessions_agree(sim, thr)

    def test_faulty_stream_bitwise_identical(self):
        """Dropped-and-retried streaming traffic changes nothing but the
        retry counters — and those agree across runtimes too."""
        plan = FaultPlan(seed=31, drop_prob=0.1)
        policy = RetryPolicy(max_attempts=8, timeout=5.0)
        sim = self._run("sim", fault_plan=plan, retry_policy=policy)
        thr = self._run("threads", fault_plan=plan, retry_policy=policy)
        self._assert_sessions_agree(sim, thr)
        # faults fired on both sides and the accounting matches
        sim_c = sim[0].metrics.counters()
        thr_c = thr[0].metrics.counters()
        assert sim_c.get("rpc.dropped_messages", 0) > 0
        for key in RPC_COUNTERS:
            assert sim_c.get(key, 0) == thr_c.get(key, 0), key

    def test_stream_timeline_bitwise_identical(self):
        """The streaming Timeline samples on the deterministic serving
        clock with count-derived values only — the whole series, sample
        times included, replays bitwise across runtimes."""
        sim = self._run("sim", timeline=True)
        thr = self._run("threads", timeline=True)
        sim_tl, thr_tl = sim[0].timeline, thr[0].timeline
        assert sim_tl is not None and len(sim_tl) > 1
        assert sim_tl.to_dict() == thr_tl.to_dict()
        # the series actually moved: the stream counters accumulated
        published = [v for _, v in sim_tl.series("stream.batches")]
        assert published[-1] > 0

    def test_faulty_stream_equals_healthy_stream(self):
        healthy = self._run("sim")
        faulty = self._run("sim", fault_plan=FaultPlan(seed=37,
                                                       drop_prob=0.15),
                           retry_policy=RetryPolicy(max_attempts=8,
                                                    timeout=5.0))
        for gid in self.PUBLISH:
            p_h, r_h = healthy[0].published(gid)
            p_f, r_f = faulty[0].published(gid)
            np.testing.assert_array_equal(p_h, p_f)
            np.testing.assert_array_equal(r_h, r_f)
