"""Tests for the vectorized sharded hash map."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ppr.hashmap import ShardedMap


class TestBasics:
    def test_insert_and_lookup(self):
        m = ShardedMap()
        keys = np.array([5, 17, 123456789], dtype=np.int64)
        idx, new = m.get_or_insert(keys)
        assert new.all()
        # dense indices are a permutation of 0..n-1 (batch-internal order
        # is unspecified)
        assert sorted(idx.tolist()) == [0, 1, 2]
        np.testing.assert_array_equal(m.lookup(keys), idx)
        assert len(m) == 3

    def test_reinsert_returns_same_indices(self):
        m = ShardedMap()
        keys = np.array([1, 2, 3], dtype=np.int64)
        idx1, _ = m.get_or_insert(keys)
        idx2, new2 = m.get_or_insert(keys)
        np.testing.assert_array_equal(idx1, idx2)
        assert not new2.any()
        assert len(m) == 3

    def test_partial_overlap(self):
        m = ShardedMap()
        first, _ = m.get_or_insert(np.array([10, 20], dtype=np.int64))
        idx, new = m.get_or_insert(np.array([20, 30], dtype=np.int64))
        np.testing.assert_array_equal(new, [False, True])
        assert idx[0] == first[1]  # 20 keeps its dense slot
        assert idx[1] == 2  # newcomer gets the next dense index

    def test_lookup_missing(self):
        m = ShardedMap()
        m.get_or_insert(np.array([7], dtype=np.int64))
        out = m.lookup(np.array([7, 8, 9], dtype=np.int64))
        np.testing.assert_array_equal(out, [0, -1, -1])

    def test_lookup_empty_map(self):
        m = ShardedMap()
        out = m.lookup(np.array([1, 2], dtype=np.int64))
        np.testing.assert_array_equal(out, [-1, -1])

    def test_lookup_duplicates_allowed(self):
        m = ShardedMap()
        m.get_or_insert(np.array([42], dtype=np.int64))
        out = m.lookup(np.array([42, 42, 42], dtype=np.int64))
        np.testing.assert_array_equal(out, [0, 0, 0])

    def test_empty_calls(self):
        m = ShardedMap()
        idx, new = m.get_or_insert(np.empty(0, dtype=np.int64))
        assert len(idx) == 0 and len(new) == 0
        assert len(m.lookup(np.empty(0, dtype=np.int64))) == 0

    def test_keys_batch_ordering(self):
        """Dense order follows batch order; within a batch it's unspecified."""
        m = ShardedMap()
        m.get_or_insert(np.array([100, 50], dtype=np.int64))
        m.get_or_insert(np.array([75], dtype=np.int64))
        assert set(m.keys()[:2].tolist()) == {100, 50}
        assert m.keys()[2] == 75

    def test_duplicate_keys_in_one_insert(self):
        m = ShardedMap()
        keys = np.array([7, 9, 7, 7, 9, 11], dtype=np.int64)
        idx, new = m.get_or_insert(keys)
        assert len(m) == 3
        assert new.all()  # every occurrence of a first-seen key is "new"
        # duplicates resolve to the same dense index
        assert idx[0] == idx[2] == idx[3]
        assert idx[1] == idx[4]
        assert idx[5] not in (idx[0], idx[1])
        # re-insert: nothing new
        idx2, new2 = m.get_or_insert(keys)
        np.testing.assert_array_equal(idx, idx2)
        assert not new2.any()

    def test_negative_keys_rejected(self):
        m = ShardedMap()
        with pytest.raises(ValueError, match="non-negative"):
            m.get_or_insert(np.array([-1], dtype=np.int64))

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="power of two"):
            ShardedMap(n_submaps=3)
        with pytest.raises(ValueError):
            ShardedMap(initial_submap_capacity=2)
        with pytest.raises(ValueError):
            ShardedMap(max_load=0.99)


class TestGrowth:
    def test_grows_past_initial_capacity(self):
        m = ShardedMap(initial_submap_capacity=4, n_submaps=2)
        keys = np.arange(1000, dtype=np.int64) * 7 + 3
        idx, new = m.get_or_insert(keys)
        assert new.all()
        assert m.rehashes > 0
        np.testing.assert_array_equal(m.lookup(keys), idx)

    def test_dense_indices_stable_across_growth(self):
        m = ShardedMap(initial_submap_capacity=4, n_submaps=2)
        first = np.array([11, 22, 33], dtype=np.int64)
        idx1, _ = m.get_or_insert(first)
        m.get_or_insert(np.arange(500, dtype=np.int64) + 1000)
        np.testing.assert_array_equal(m.lookup(first), idx1)

    def test_incremental_inserts(self):
        m = ShardedMap(initial_submap_capacity=4, n_submaps=4)
        all_keys = []
        rng = np.random.default_rng(0)
        for _ in range(50):
            batch = np.unique(rng.integers(0, 10**12, size=40))
            m.get_or_insert(batch)
            all_keys.append(batch)
        union = np.unique(np.concatenate(all_keys))
        assert len(m) == len(union)
        assert np.all(m.lookup(union) >= 0)


class TestSubmaps:
    def test_submap_assignment_spread(self):
        m = ShardedMap(n_submaps=16)
        keys = np.arange(10_000, dtype=np.int64)
        subs = m.submap_of(keys)
        counts = np.bincount(subs, minlength=16)
        assert counts.min() > 0.5 * counts.mean()
        assert counts.max() < 2.0 * counts.mean()

    def test_submap_sizes_sum_to_len(self):
        m = ShardedMap(n_submaps=8)
        m.get_or_insert(np.arange(300, dtype=np.int64))
        assert m.submap_sizes().sum() == len(m)


class TestProperties:
    @given(st.lists(st.integers(0, 2**40), min_size=0, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_behaves_like_dict(self, raw_keys):
        """The map agrees with a reference Python dict on any key sequence."""
        m = ShardedMap(initial_submap_capacity=4, n_submaps=4)
        reference = {}
        keys = np.unique(np.array(raw_keys, dtype=np.int64))
        mid = len(keys) // 2
        for batch in (keys[:mid], keys[mid:], keys):
            if len(batch) == 0:
                continue
            idx, new = m.get_or_insert(batch)
            for k, i, isnew in zip(batch.tolist(), idx.tolist(),
                                   new.tolist()):
                if k in reference:
                    assert not isnew
                    assert reference[k] == i
                else:
                    assert isnew
                    reference[k] = i
        assert len(m) == len(reference)
        if len(keys):
            looked = m.lookup(keys)
            for k, i in zip(keys.tolist(), looked.tolist()):
                assert reference.get(k, -1) == i

    @given(st.integers(1, 2000), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_bulk_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        keys = np.unique(rng.integers(0, 2**50, size=n))
        m = ShardedMap(initial_submap_capacity=8, n_submaps=8)
        idx, _ = m.get_or_insert(keys)
        # dense indices are a permutation of range(len)
        assert sorted(idx.tolist()) == list(range(len(keys)))
        np.testing.assert_array_equal(m.lookup(keys), idx)
        np.testing.assert_array_equal(np.sort(m.keys()), keys)
