"""Unit and property tests for the adaptive neighbor-fetch layer.

Covers the three mechanisms in isolation (partial-hit splitting via
``GraphShard.cache_mask``, the byte-budgeted hot-vertex cache, and the
single-flight pending table) plus the wire-format helpers they rest on
(``NeighborBatch.take_rows`` / ``NeighborBatch.merge``).  Hypothesis
checks the two invariants the bitwise-identity guarantee depends on:

* split/merge round-trip — any partition of a batch into parts, in any
  order, merges back to the original batch bit-for-bit;
* eviction determinism — the same admission sequence always produces
  the same cache contents and the same eviction count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShardError
from repro.graph import powerlaw_cluster
from repro.partition import HashPartitioner
from repro.rpc.thread_runtime import ThreadFuture
from repro.storage import FetchCache, NeighborFetchService, build_shards
from repro.storage.neighbor_batch import NeighborBatch


def make_batch(ids):
    """A deterministic batch for node ``ids``: row i has (i % 3) + 1
    neighbors, all fields pure functions of the node id — so any subset
    request is consistent with any other."""
    ids = np.asarray(ids, dtype=np.int64)
    counts = (ids % 3) + 1
    indptr = np.zeros(len(ids) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    offset = np.arange(total) - np.repeat(indptr[:-1], counts)
    local = np.repeat(ids * 10, counts) + offset
    shard = np.repeat(ids % 2, counts)
    glob = local + 1000
    weights = local.astype(np.float64) + 0.5
    wdeg = weights * 2.0
    src_wdeg = ids.astype(np.float64) + 1.0
    return NeighborBatch(indptr, local, shard, glob, weights, wdeg, src_wdeg)


def assert_batches_equal(a, b):
    for x, y in zip(a.to_arrays(), b.to_arrays()):
        np.testing.assert_array_equal(x, y)


class _StubShard:
    has_halo_cache = False


class _StubRref:
    """Just enough RRef surface for the service's thread-path dispatch."""

    def __init__(self, shard):
        self._shard = shard
        self.ctx = object()  # no .scheduler attribute -> ThreadFuture path

    def local_value(self):
        return self._shard


class _StubStorage:
    """Fake DistGraphStorage: every remote fetch resolves immediately to
    :func:`make_batch` and is recorded for call-pattern assertions."""

    compress = True

    def __init__(self, n_shards=2, shard_id=0):
        self.n_shards = n_shards
        self.shard_id = shard_id
        self.caller = "w0-0"
        self.rrefs = [_StubRref(_StubShard()) for _ in range(n_shards)]
        self.calls = []

    def is_local(self, dest_shard):
        return dest_shard == self.shard_id

    def get_neighbor_infos(self, dest_shard, local_ids):
        ids = np.asarray(local_ids, dtype=np.int64)
        self.calls.append((int(dest_shard), ids.copy()))
        return ThreadFuture.resolved(make_batch(ids))


class _Metrics:
    def __init__(self):
        self.c = {}

    def inc(self, name, value=1):
        self.c[name] = self.c.get(name, 0) + value


def make_service(**kwargs):
    storage = _StubStorage()
    metrics = _Metrics()
    cache = FetchCache(kwargs.pop("capacity", 1 << 20))
    svc = NeighborFetchService(storage, cache, metrics=metrics, **kwargs)
    return svc, storage, cache, metrics


# ---------------------------------------------------------------------------
# GraphShard.cache_mask
# ---------------------------------------------------------------------------

class TestCacheMask:
    @pytest.fixture(scope="class")
    def sharded(self):
        g = powerlaw_cluster(200, 5, seed=3)
        return build_shards(g, HashPartitioner().partition(g, 2),
                            halo_hops=2)

    def test_mask_splits_halo_from_core(self, sharded):
        shard0 = sharded.shards[0]
        halos = shard0.halo_globals()
        local, owner = sharded.address_of(halos)
        covered = local[owner == 1][:5]
        non_halo = np.setdiff1d(sharded.shards[1].core_global, halos)
        uncovered, _ = sharded.address_of(non_halo[:5])
        mixed = np.concatenate([covered, uncovered])
        mask = shard0.cache_mask(1, mixed)
        assert mask.dtype == bool
        assert mask[:len(covered)].all()
        assert not mask[len(covered):].any()

    def test_mask_all_agrees_with_cache_covers(self, sharded):
        shard0 = sharded.shards[0]
        halos = shard0.halo_globals()
        local, owner = sharded.address_of(halos)
        covered = local[owner == 1][:8]
        assert bool(shard0.cache_mask(1, covered).all()) \
            == shard0.cache_covers(1, covered)

    def test_mask_without_cache_is_all_false(self):
        g = powerlaw_cluster(100, 4, seed=0)
        sharded = build_shards(g, HashPartitioner().partition(g, 2))
        shard0 = sharded.shards[0]
        assert not shard0.has_halo_cache
        mask = shard0.cache_mask(1, np.array([0, 1, 2], dtype=np.int64))
        assert mask.shape == (3,) and not mask.any()


# ---------------------------------------------------------------------------
# take_rows / merge
# ---------------------------------------------------------------------------

class TestTakeRowsMerge:
    def test_take_rows_identity(self):
        full = make_batch(np.arange(6))
        assert_batches_equal(full.take_rows(np.arange(6)), full)

    def test_take_rows_reorders(self):
        full = make_batch(np.array([3, 1, 4, 1 + 4, 9]))
        sub = full.take_rows(np.array([4, 0, 2]))
        direct = make_batch(np.array([9, 3, 4]))
        assert_batches_equal(sub, direct)

    def test_merge_overlap_raises(self):
        full = make_batch(np.arange(4))
        a = full.take_rows(np.array([0, 1]))
        b = full.take_rows(np.array([1, 2, 3]))
        with pytest.raises(ShardError, match="overlap"):
            NeighborBatch.merge(4, [(np.array([0, 1]), a),
                                    (np.array([1, 2, 3]), b)])

    def test_merge_incomplete_raises(self):
        full = make_batch(np.arange(4))
        a = full.take_rows(np.array([0, 1]))
        with pytest.raises(ShardError, match="cover"):
            NeighborBatch.merge(4, [(np.array([0, 1]), a)])

    def test_merge_row_count_mismatch_raises(self):
        full = make_batch(np.arange(4))
        a = full.take_rows(np.array([0, 1]))
        with pytest.raises(ShardError, match="positions"):
            NeighborBatch.merge(4, [(np.array([0, 1, 2]), a),
                                    (np.array([3]),
                                     full.take_rows(np.array([3])))])


@st.composite
def batch_partitions(draw):
    """A deterministic batch plus a random exact partition of its rows."""
    n = draw(st.integers(min_value=1, max_value=20))
    ids = draw(st.lists(st.integers(min_value=0, max_value=50),
                        min_size=n, max_size=n))
    perm = draw(st.permutations(list(range(n))))
    n_parts = draw(st.integers(min_value=1, max_value=n))
    cuts = sorted(draw(st.lists(
        st.integers(min_value=1, max_value=n - 1) if n > 1
        else st.nothing(),
        min_size=n_parts - 1, max_size=n_parts - 1, unique=True,
    ))) if n > 1 else []
    bounds = [0, *cuts, n]
    parts = [perm[a:b] for a, b in zip(bounds, bounds[1:]) if b > a]
    return np.asarray(ids, dtype=np.int64), parts


class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(batch_partitions())
    def test_split_merge_round_trip_bitwise(self, case):
        """Any partition of a batch, in any row order, merges back to the
        original bit-for-bit — the fetch layer's identity guarantee."""
        ids, parts = case
        full = make_batch(ids)
        pieces = [(np.asarray(p, dtype=np.int64),
                   full.take_rows(np.asarray(p, dtype=np.int64)))
                  for p in parts]
        merged = NeighborBatch.merge(len(ids), pieces)
        assert_batches_equal(merged, full)


# ---------------------------------------------------------------------------
# FetchCache
# ---------------------------------------------------------------------------

def admit_ids(cache, ids):
    ids = np.asarray(ids, dtype=np.int64)
    keys = [int(k) for k in ids * 2]  # n_shards=2, dest=0 packing
    batch = make_batch(ids)
    with cache.lock:
        return cache.admit(keys, batch)


class TestFetchCache:
    def test_admit_accounts_bytes(self):
        cache = FetchCache(1 << 20)
        admit_ids(cache, [0, 1, 2])  # 1, 2, 3 neighbors
        assert len(cache.rows) == 3
        assert cache.nbytes == (1 + 2 + 3) * 40 + 3 * 8

    def test_zero_capacity_disables(self):
        cache = FetchCache(0)
        assert admit_ids(cache, [0, 1]) == 0
        assert cache.rows == {} and cache.nbytes == 0

    def test_oversize_row_skipped(self):
        cache = FetchCache(60)  # row of node 1 costs 2*40+8 = 88 > 60
        admit_ids(cache, [0, 1])  # node 0 costs 48, fits
        assert list(cache.rows) == [0]
        assert cache.evictions == 0

    def test_eviction_prefers_cold_then_old(self):
        cache = FetchCache(3 * 48)  # three single-neighbor rows max
        admit_ids(cache, [0, 3, 6])  # keys 0, 6, 12 — one neighbor each
        cache.rows[0].freq += 1  # key 0 is hot
        cache.tick += 1
        cache.rows[12].tick = cache.tick  # key 12 recently used
        admit_ids(cache, [9])  # forces one eviction
        assert cache.evictions == 1
        assert 6 not in cache.rows  # coldest and oldest goes first
        assert set(cache.rows) == {0, 12, 18}

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity_bytes"):
            FetchCache(-1)

    def test_unregister_is_identity_guarded(self):
        cache = FetchCache(0)
        fut_a, fut_b = object(), object()
        cache.pending[5] = (fut_a, 0)
        cache.unregister([5], fut_b)  # someone else's flight: untouched
        assert 5 in cache.pending
        cache.unregister([5], fut_a)
        assert 5 not in cache.pending
        cache.unregister([5], fut_a)  # idempotent

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.integers(min_value=0, max_value=40),
                             min_size=1, max_size=6),
                    min_size=1, max_size=12),
           st.integers(min_value=0, max_value=800))
    def test_admission_sequence_is_deterministic(self, seq, capacity):
        """Same admissions, same capacity -> same rows, bytes, evictions."""
        a, b = FetchCache(capacity), FetchCache(capacity)
        for ids in seq:
            admit_ids(a, ids)
            a.tick += 1
        for ids in seq:
            admit_ids(b, ids)
            b.tick += 1
        assert set(a.rows) == set(b.rows)
        assert a.nbytes == b.nbytes == sum(r.nbytes for r in a.rows.values())
        assert a.evictions == b.evictions
        assert a.nbytes <= capacity


# ---------------------------------------------------------------------------
# NeighborFetchService over a stub storage (thread-future path)
# ---------------------------------------------------------------------------

class TestFetchService:
    def test_local_and_delegated_surface(self):
        svc, storage, _, _ = make_service()
        assert svc.n_shards == 2 and svc.shard_id == 0
        assert svc.compress and svc.is_local(0) and not svc.is_local(1)
        svc.get_neighbor_infos(0, np.array([1, 2]))  # local: delegated raw
        assert storage.calls[0][0] == 0
        assert np.array_equal(storage.calls[0][1], np.array([1, 2]))

    def test_miss_then_hot_is_bitwise_identical(self):
        svc, storage, cache, metrics = make_service()
        ids = np.array([5, 6, 7], dtype=np.int64)
        first = svc.get_neighbor_infos(1, ids).value()
        assert len(storage.calls) == 1
        second = svc.get_neighbor_infos(1, ids).value()
        assert len(storage.calls) == 1  # served entirely from the cache
        assert_batches_equal(first, second)
        assert_batches_equal(second, make_batch(ids))
        assert metrics.c["fetch.requests"] == 2
        assert metrics.c["fetch.misses"] == 3
        assert metrics.c["fetch.cache_hits"] == 3
        assert metrics.c["fetch.bytes_saved"] > 0
        assert len(cache.rows) == 3 and not cache.pending

    def test_pure_miss_passthrough_returns_raw_future(self):
        svc, storage, _, _ = make_service(capacity=0, split=False,
                                          coalesce=False)
        ids = np.array([1, 2], dtype=np.int64)
        fut = svc.get_neighbor_infos(1, ids)
        assert fut.done
        assert_batches_equal(fut.value(), make_batch(ids))
        # with every mechanism off the storage future passes through as-is
        assert isinstance(fut, ThreadFuture)

    def test_coalescing_dedups_overlapping_flights(self):
        svc, storage, cache, metrics = make_service()
        f1 = svc.get_neighbor_infos(1, np.array([5, 6, 7]))
        f2 = svc.get_neighbor_infos(1, np.array([6, 7, 8]))
        # second request only fetched the one genuinely new node
        assert [list(ids) for _, ids in storage.calls] == [[5, 6, 7], [8]]
        assert metrics.c["fetch.coalesced"] == 2
        assert metrics.c["fetch.misses"] == 3 + 1
        assert_batches_equal(f1.value(), make_batch(np.array([5, 6, 7])))
        assert_batches_equal(f2.value(), make_batch(np.array([6, 7, 8])))
        assert not cache.pending
        assert set(cache.rows) == {5 * 2 + 1, 6 * 2 + 1, 7 * 2 + 1,
                                   8 * 2 + 1}

    def test_coalesced_flight_consumable_in_any_order(self):
        svc, _, _, _ = make_service()
        f1 = svc.get_neighbor_infos(1, np.array([5, 6, 7]))
        f2 = svc.get_neighbor_infos(1, np.array([7, 5]))
        # consume the late arrival first: it extracts from f1's response
        assert_batches_equal(f2.value(), make_batch(np.array([7, 5])))
        assert_batches_equal(f1.value(), make_batch(np.array([5, 6, 7])))

    def test_coalesce_off_refetches(self):
        svc, storage, _, metrics = make_service(coalesce=False)
        svc.get_neighbor_infos(1, np.array([5, 6]))
        svc.get_neighbor_infos(1, np.array([5, 6]))
        assert len(storage.calls) == 2
        assert metrics.c.get("fetch.coalesced", 0) == 0

    def test_mixed_hot_and_miss_merges_in_request_order(self):
        svc, storage, _, _ = make_service()
        svc.get_neighbor_infos(1, np.array([10, 11])).value()
        ids = np.array([12, 10, 13, 11], dtype=np.int64)
        out = svc.get_neighbor_infos(1, ids).value()
        assert list(storage.calls[-1][1]) == [12, 13]  # only the misses
        assert_batches_equal(out, make_batch(ids))
