"""Tests for RPC tracing, sharded-graph persistence, and the CLI."""

import numpy as np
import pytest

from repro import EngineConfig, GraphEngine, RunRequest
from repro.graph import powerlaw_cluster, save_npz
from repro.partition import MetisLitePartitioner
from repro.rpc.tracing import RpcCallRecord, RpcTracer
from repro.storage import build_shards
from repro.storage.persist import load_sharded, save_sharded


class TestRpcTracer:
    def test_engine_tracing(self):
        g = powerlaw_cluster(400, 6, mixing=0.2, seed=0)
        engine = GraphEngine(g, EngineConfig(n_machines=2, trace_rpc=True,
                                             seed=0))
        run = engine.run(RunRequest(n_queries=4, seed=1))
        assert run.trace is not None
        assert len(run.trace) == run.remote_requests + run.local_calls
        assert len(run.trace.remote_records()) == run.remote_requests

    def test_tracing_disabled_by_default(self):
        g = powerlaw_cluster(200, 5, seed=1)
        engine = GraphEngine(g, EngineConfig(n_machines=2, seed=0))
        run = engine.run(RunRequest(n_queries=2))
        assert run.trace is None

    def test_machine_matrix_off_diagonal(self):
        g = powerlaw_cluster(400, 6, mixing=0.3, seed=2)
        engine = GraphEngine(g, EngineConfig(n_machines=3, trace_rpc=True,
                                             seed=0))
        run = engine.run(RunRequest(n_queries=6, seed=3))
        m = run.trace.machine_matrix(3)
        assert np.trace(m) == 0  # local calls aren't remote records
        assert m.sum() == run.remote_requests

    def test_summary_fields(self):
        g = powerlaw_cluster(300, 5, seed=3)
        engine = GraphEngine(g, EngineConfig(n_machines=2, trace_rpc=True,
                                             seed=0))
        run = engine.run(RunRequest(n_queries=3, seed=4))
        s = run.trace.summary(2)
        assert s["calls_total"] >= s["calls_remote"]
        assert "get_neighbor_batch" in s["by_method"] or \
            "get_vertex_props" in s["by_method"]
        assert set(s["payload_percentiles"]) == {50, 90, 99}

    def test_empty_tracer(self):
        t = RpcTracer()
        assert t.total_request_bytes() == 0
        assert t.payload_percentiles() == {50: 0.0, 90: 0.0, 99: 0.0}
        np.testing.assert_array_equal(t.machine_matrix(2), np.zeros((2, 2)))

    def test_manual_record(self):
        t = RpcTracer()
        t.record(RpcCallRecord(0.0, "a", "b", 0, 1, "m", 100, 2, True))
        assert len(t) == 1
        assert t.calls_by_method() == {"m": 1}


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        g = powerlaw_cluster(300, 6, mixing=0.2, seed=4)
        sharded = build_shards(
            g, MetisLitePartitioner(seed=0).partition(g, 3)
        )
        path = tmp_path / "sharded.npz"
        save_sharded(path, sharded)
        loaded = load_sharded(path)
        assert loaded.n_shards == 3
        np.testing.assert_array_equal(loaded.result.assignment,
                                      sharded.result.assignment)
        for a, b in zip(loaded.shards, sharded.shards):
            np.testing.assert_array_equal(a.core_global, b.core_global)
            np.testing.assert_array_equal(a.nbr_global, b.nbr_global)
            np.testing.assert_allclose(a.nbr_weight, b.nbr_weight)

    def test_halo_hops_preserved(self, tmp_path):
        g = powerlaw_cluster(200, 5, seed=5)
        sharded = build_shards(
            g, MetisLitePartitioner(seed=0).partition(g, 2), halo_hops=2
        )
        path = tmp_path / "sharded2.npz"
        save_sharded(path, sharded, halo_hops=2)
        loaded = load_sharded(path)
        assert loaded.shards[0].has_halo_cache

    def test_malformed_file(self, tmp_path):
        from repro.errors import GraphFormatError
        path = tmp_path / "junk.npz"
        np.savez(path, nonsense=np.zeros(3))
        with pytest.raises(GraphFormatError):
            load_sharded(path)

    def test_loaded_graph_queryable(self, tmp_path):
        g = powerlaw_cluster(300, 6, mixing=0.2, seed=6)
        sharded = build_shards(
            g, MetisLitePartitioner(seed=0).partition(g, 2)
        )
        path = tmp_path / "s.npz"
        save_sharded(path, sharded)
        loaded = load_sharded(path)
        engine = GraphEngine(loaded.graph, EngineConfig(n_machines=2),
                             sharded=loaded)
        run = engine.run(RunRequest(n_queries=3))
        assert run.throughput > 0


class TestCli:
    @pytest.fixture()
    def graph_file(self, tmp_path):
        g = powerlaw_cluster(250, 5, mixing=0.2, seed=7)
        path = tmp_path / "g.npz"
        save_npz(path, g)
        return str(path)

    def test_info(self, graph_file, capsys):
        from repro.cli import main
        assert main(["info", graph_file]) == 0
        out = capsys.readouterr().out
        assert "250" in out and "d_max" in out

    def test_partition_and_query(self, graph_file, tmp_path, capsys):
        from repro.cli import main
        out_path = str(tmp_path / "shards.npz")
        assert main(["partition", graph_file, "--machines", "2",
                     "--output", out_path]) == 0
        assert main(["query", graph_file, "--shards", out_path,
                     "--queries", "3", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "edge cut" in out
        assert "SSPPR queries" in out
        assert "top-3" in out

    def test_query_batched(self, graph_file, capsys):
        from repro.cli import main
        assert main(["query", graph_file, "--machines", "2", "--queries",
                     "3", "--batch-queries", "--top", "0"]) == 0
        assert "SSPPR queries" in capsys.readouterr().out

    def test_walk(self, graph_file, capsys):
        from repro.cli import main
        assert main(["walk", graph_file, "--machines", "2", "--roots", "4",
                     "--length", "3"]) == 0
        assert "walks/s" in capsys.readouterr().out

    def test_bench(self, graph_file, capsys):
        from repro.cli import main
        assert main(["bench", graph_file, "--machines", "2",
                     "--queries", "3"]) == 0
        out = capsys.readouterr().out
        assert "PPR Engine" in out and "multi-query" in out

    def test_unknown_graph(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["info", "not-a-dataset-or-file"])
