"""The three PPR method families (Section 2.2.1) head to head.

Matrix-based (power iteration), local-update (Forward Push), and
Monte-Carlo (random walk with restart) on one graph: per-query time, L1
error, and top-50 precision against the power-iteration ground truth.
Reproduces the related-work narrative quantitatively: power iteration is
exact but pays O(|E|) per iteration; Forward Push terminates early with a
bounded error; Monte-Carlo is cheap per walk but noisy.
"""

import time

import numpy as np

from benchmarks import common
from benchmarks.common import get_graph
from repro.ppr import (
    PPRParams,
    forward_push_parallel,
    l1_error,
    monte_carlo_ssppr_unweighted,
    power_iteration_ssppr,
    topk_precision,
)
from repro.ppr.power_iteration import build_transition

DATASET = "products"
N_SOURCES = 3
N_WALKS = 20_000


def run_methods() -> list[dict]:
    graph = get_graph(DATASET)
    pt = build_transition(graph)
    rng = np.random.default_rng(67)
    sources = rng.choice(np.flatnonzero(graph.out_degree() > 0),
                         size=N_SOURCES, replace=False)
    params = PPRParams()
    rows = []
    agg = {"power_iteration": [], "forward_push": [], "monte_carlo": []}
    exact_by_source = {}
    for s in sources:
        start = time.perf_counter()
        exact = power_iteration_ssppr(graph, int(s), alpha=params.alpha,
                                      pt=pt)
        agg["power_iteration"].append(
            (time.perf_counter() - start, 0.0, 1.0)
        )
        exact_by_source[int(s)] = exact

        start = time.perf_counter()
        push, _, _ = forward_push_parallel(graph, int(s), params)
        dt = time.perf_counter() - start
        agg["forward_push"].append(
            (dt, l1_error(push, exact), topk_precision(push, exact, 50))
        )

        start = time.perf_counter()
        mc = monte_carlo_ssppr_unweighted(graph, int(s), alpha=params.alpha,
                                          n_walks=N_WALKS, seed=int(s))
        dt = time.perf_counter() - start
        agg["monte_carlo"].append(
            (dt, l1_error(mc, exact), topk_precision(mc, exact, 50))
        )

    for method, triples in agg.items():
        times, errs, precs = zip(*triples)
        rows.append({
            "Method": method,
            "Time/query (ms)": round(1e3 * float(np.mean(times)), 1),
            "L1 error": float(f"{np.mean(errs):.3e}"),
            "Top-50 precision": round(float(np.mean(precs)), 3),
        })
    return rows


# Forward Push: faster than exact power iteration, near-exact top-k.
# Monte-Carlo: noticeably noisier than Forward Push at this budget.
EXPECTATIONS = [
    {"kind": "cmp", "label": "forward push beats power iteration",
     "left": {"col": "Time/query (ms)",
              "where": {"Method": "forward_push"}},
     "op": "lt",
     "right": {"col": "Time/query (ms)",
               "where": {"Method": "power_iteration"}},
     "scales": ["full"]},
    {"kind": "per_row", "label": "forward push near-exact top-k",
     "left_col": "Top-50 precision", "op": "ge", "right": 0.9,
     "where": {"Method": "forward_push"}, "scales": ["full"]},
    {"kind": "cmp", "label": "monte carlo noisier than push",
     "left": {"col": "L1 error", "where": {"Method": "monte_carlo"}},
     "op": "gt",
     "right": {"col": "L1 error", "where": {"Method": "forward_push"}},
     "scales": "all"},
]


def test_ppr_method_families(benchmark):
    rows, wall = common.timed(benchmark, run_methods)
    common.publish(
        "ppr_methods",
        f"PPR method families on {DATASET} (alpha=0.462; "
        f"MC = {N_WALKS} walks)",
        rows, key=("Method",),
        deterministic=("L1 error", "Top-50 precision"),
        lower_is_better=("Time/query (ms)",),
        expectations=EXPECTATIONS, wall_s=wall,
    )
    for row in rows:
        benchmark.extra_info[row["Method"]] = (
            f"t={row['Time/query (ms)']}ms p@50={row['Top-50 precision']}"
        )
