"""Scaling crossover — the honest reproduction of Table 2's headline gap.

The paper reports the PPR Engine 83x-1085x faster than the tensor-based
Forward Push on graphs of 2.5M-111M nodes.  That gap is a *scale*
phenomenon: the tensor method's per-iteration cost is proportional to |V|
(dense activation scans and |V|-length scatter targets) while the hashmap
engine's cost follows the touched set.  Our stand-ins are ~1000x smaller
than the paper's graphs, which compresses |V|-proportional costs from
milliseconds to microseconds — at that size the tensor baseline is even
competitive.

This bench measures the mechanism directly: sweep |V| at fixed degree
structure and show

* tensor per-query time grows superlinearly in |V| while engine per-query
  time tracks the touched set;
* the engine/tensor throughput ratio rises monotonically through a
  crossover (around |V| ~ 2e5 on this host) and keeps widening — a
  straight extrapolation of the measured trend reaches the paper's
  ratios at the paper's graph sizes.
"""

import numpy as np

from benchmarks import common
from benchmarks.common import bench_scale
from repro.engine import EngineConfig, GraphEngine, RunRequest
from repro.graph import powerlaw_cluster
from repro.partition import HashPartitioner
from repro.ppr import PPRParams

PARAMS = PPRParams()
SIZES_BY_SCALE = {
    "tiny": (10_000, 40_000),
    "small": (25_000, 100_000, 400_000),
    "full": (50_000, 200_000, 800_000),
}


def run_size(n_nodes: int, n_queries: int) -> dict:
    graph = powerlaw_cluster(n_nodes, 12, exponent=2.3, max_degree=500,
                             mixing=0.1, seed=5)
    cfg = EngineConfig(n_machines=4, partitioner=HashPartitioner())
    engine = GraphEngine(graph, cfg)
    run_e = engine.run(RunRequest(n_queries=n_queries, seed=7, params=PARAMS,
                               keep_states=True))
    run_t = engine.run_tensor_queries(
        sources=np.array(sorted(run_e.states)), seed=7, params=PARAMS
    )
    touched = int(np.mean([s.n_touched for s in run_e.states.values()]))
    return {
        "|V|": n_nodes,
        "Engine (q/s)": round(run_e.throughput, 1),
        "Tensor (q/s)": round(run_t.throughput, 2),
        "Ratio": round(run_e.throughput / run_t.throughput, 2),
        "Touched": touched,
        "Touched/|V|": round(touched / n_nodes, 3),
    }


# The shape: ratio grows monotonically with |V|; at full scale it crosses
# 1 within the sweep and the fitted trend keeps widening toward the
# paper's regime (the projected ratios live in ``extra``).  The monotone
# claim gates only at full — at tiny/small the sweep's sizes are close
# enough that wall-clock jitter can flip adjacent ratios.
EXPECTATIONS = [
    {"kind": "monotone", "label": "engine/tensor ratio grows with |V|",
     "col": "Ratio", "direction": "increasing", "order_col": "|V|",
     "scales": ["full"]},
    {"kind": "cmp", "label": "ratio crosses 1 within the sweep",
     "left": {"col": "Ratio", "agg": "last", "order_col": "|V|"},
     "op": "gt", "right": 1.0, "scales": ["full"]},
    {"kind": "cmp", "label": "projected products ratio > 2x",
     "left": {"extra": "projected_products"}, "op": "gt", "right": 2.0,
     "scales": ["full"]},
    {"kind": "cmp", "label": "projection widens with |V|",
     "left": {"extra": "projected_friendster"}, "op": "gt",
     "right": {"extra": "projected_products"}, "scales": ["full"]},
]


def test_scaling_crossover(benchmark):
    scale = bench_scale()
    sizes = SIZES_BY_SCALE[scale.name]
    n_queries = max(4, scale.queries_small)

    rows, wall = common.timed(
        benchmark, lambda: [run_size(n, n_queries) for n in sizes]
    )
    ratios = [r["Ratio"] for r in rows]
    benchmark.extra_info["ratio_series"] = " -> ".join(
        f"{r['|V|']}:{r['Ratio']}" for r in rows
    )

    # log-log slope of the ratio trend, extrapolated to the paper's sizes
    logsizes = np.log([r["|V|"] for r in rows])
    logratio = np.log(np.maximum(ratios, 1e-9))
    slope, intercept = np.polyfit(logsizes, logratio, 1)
    extra = {}
    for paper_v, paper_ratio, ds in ((2.5e6, 83, "products"),
                                     (65.6e6, 1085, "friendster")):
        projected = float(np.exp(intercept + slope * np.log(paper_v)))
        extra[f"projected_{ds}"] = round(projected, 1)
        benchmark.extra_info[f"projected@{ds}"] = (
            f"{projected:.0f}x (paper: {paper_ratio}x)"
        )
        print(f"projected engine/tensor ratio at |V|={paper_v:.2g} "
              f"({ds}): {projected:.0f}x   [paper: {paper_ratio}x]")

    common.publish(
        "scaling_crossover",
        "Engine/tensor throughput ratio vs |V| (fixed degree structure)",
        rows, key=("|V|",),
        deterministic=("Touched", "Touched/|V|"),
        higher_is_better=("Engine (q/s)", "Tensor (q/s)"),
        expectations=EXPECTATIONS, extra=extra, wall_s=wall,
    )
