"""Scaling crossover — the honest reproduction of Table 2's headline gap.

The paper reports the PPR Engine 83x-1085x faster than the tensor-based
Forward Push on graphs of 2.5M-111M nodes.  That gap is a *scale*
phenomenon: the tensor method's per-iteration cost is proportional to |V|
(dense activation scans and |V|-length scatter targets) while the hashmap
engine's cost follows the touched set.  Our stand-ins are ~1000x smaller
than the paper's graphs, which compresses |V|-proportional costs from
milliseconds to microseconds — at that size the tensor baseline is even
competitive.

This bench measures the mechanism directly: sweep |V| at fixed degree
structure and show

* tensor per-query time grows superlinearly in |V| while engine per-query
  time tracks the touched set;
* the engine/tensor throughput ratio rises monotonically through a
  crossover (around |V| ~ 2e5 on this host) and keeps widening — a
  straight extrapolation of the measured trend reaches the paper's
  ratios at the paper's graph sizes.
"""

import numpy as np

from benchmarks.common import assert_shapes, bench_scale, print_and_store
from repro.engine import EngineConfig, GraphEngine
from repro.graph import powerlaw_cluster
from repro.partition import HashPartitioner
from repro.ppr import PPRParams

PARAMS = PPRParams()
SIZES_BY_SCALE = {
    "tiny": (10_000, 40_000),
    "small": (25_000, 100_000, 400_000),
    "full": (50_000, 200_000, 800_000),
}


def run_size(n_nodes: int, n_queries: int) -> dict:
    graph = powerlaw_cluster(n_nodes, 12, exponent=2.3, max_degree=500,
                             mixing=0.1, seed=5)
    cfg = EngineConfig(n_machines=4, partitioner=HashPartitioner())
    engine = GraphEngine(graph, cfg)
    run_e = engine.run_queries(n_queries=n_queries, seed=7, params=PARAMS,
                               keep_states=True)
    run_t = engine.run_tensor_queries(
        sources=np.array(sorted(run_e.states)), seed=7, params=PARAMS
    )
    touched = int(np.mean([s.n_touched for s in run_e.states.values()]))
    return {
        "|V|": n_nodes,
        "Engine (q/s)": round(run_e.throughput, 1),
        "Tensor (q/s)": round(run_t.throughput, 2),
        "Ratio": round(run_e.throughput / run_t.throughput, 2),
        "Touched": touched,
        "Touched/|V|": round(touched / n_nodes, 3),
    }


def test_scaling_crossover(benchmark):
    scale = bench_scale()
    sizes = SIZES_BY_SCALE[scale.name]
    n_queries = max(4, scale.queries_small)

    rows = benchmark.pedantic(
        lambda: [run_size(n, n_queries) for n in sizes],
        rounds=1, iterations=1,
    )
    print_and_store(
        "scaling_crossover",
        "Engine/tensor throughput ratio vs |V| (fixed degree structure)",
        rows,
    )
    ratios = [r["Ratio"] for r in rows]
    benchmark.extra_info["ratio_series"] = " -> ".join(
        f"{r['|V|']}:{r['Ratio']}" for r in rows
    )

    # log-log slope of the ratio trend, extrapolated to the paper's sizes
    logsizes = np.log([r["|V|"] for r in rows])
    logratio = np.log(np.maximum(ratios, 1e-9))
    slope, intercept = np.polyfit(logsizes, logratio, 1)
    for paper_v, paper_ratio, ds in ((2.5e6, 83, "products"),
                                     (65.6e6, 1085, "friendster")):
        projected = float(np.exp(intercept + slope * np.log(paper_v)))
        benchmark.extra_info[f"projected@{ds}"] = (
            f"{projected:.0f}x (paper: {paper_ratio}x)"
        )
        print(f"projected engine/tensor ratio at |V|={paper_v:.2g} "
              f"({ds}): {projected:.0f}x   [paper: {paper_ratio}x]")

    # The shape: ratio grows monotonically with |V|...
    assert all(b > a for a, b in zip(ratios, ratios[1:])), ratios
    if assert_shapes():
        # ...crosses 1 within the sweep, and the fitted trend keeps
        # widening toward the paper's regime.
        assert ratios[-1] > 1.0, ratios
        projected_products = float(np.exp(intercept + slope * np.log(2.5e6)))
        assert projected_products > 2.0, projected_products
        projected_friendster = float(np.exp(intercept + slope * np.log(65.6e6)))
        assert projected_friendster > projected_products
