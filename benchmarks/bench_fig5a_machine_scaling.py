"""Figure 5(a) — throughput vs number of machines.

Paper setup: 256 queries, partitions = machines, one computing process per
machine, machines in {2, 4, 8}.  Paper observation: 2.5-3.5x speedup going
2 -> 8 machines, with the remote-traversal ratio rising as partitions
shrink (e.g. 3% -> 13% on Ogbn-products) and occasional super-linear steps
when partitioning happens to cut fewer edges (Twitter 2 -> 4).

Shape expectations here: throughput increases with machine count on every
dataset, while the measured remote-traffic share rises with K.
"""

from benchmarks import common
from benchmarks.common import (
    DATASET_NAMES,
    bench_scale,
    engine_config,
    get_sharded,
)
from repro.engine import GraphEngine, RunRequest
from repro.partition import edge_cut_fraction
from repro.ppr import PPRParams

MACHINE_COUNTS = (2, 4, 8)
PARAMS = PPRParams()


def run_dataset(name: str) -> list[dict]:
    scale = bench_scale()
    n_queries = max(MACHINE_COUNTS[-1], scale.queries)
    rows = []
    for k in MACHINE_COUNTS:
        sharded = get_sharded(name, k)
        engine = GraphEngine(sharded.graph, engine_config(k),
                             sharded=sharded)
        run = engine.run(RunRequest(n_queries=n_queries, seed=17,
                                 params=PARAMS))
        cut = edge_cut_fraction(sharded.graph, sharded.result)
        remote_share = run.remote_requests / max(
            run.remote_requests + run.local_calls, 1
        )
        rows.append({
            "Dataset": name,
            "Machines": k,
            "Throughput (q/s)": round(run.throughput, 1),
            "Edge cut": round(cut, 3),
            "Remote call share": round(remote_share, 3),
        })
    return rows


# Scaling wins: some larger cluster beats 2 machines.  (The per-point
# comparison 8m > 2m is noise-sensitive on this substrate —
# small-touched-set datasets saturate near 8 machines where per-round RPC
# costs dominate, and measured compute carries host jitter — so assert
# the robust envelope.)  Finer partitions cut more edges.
EXPECTATIONS = [
    exp for name in DATASET_NAMES for exp in (
        {"kind": "cmp", "label": f"{name}: scaling beats 2 machines",
         "left": {"col": "Throughput (q/s)",
                  "where": {"Dataset": name,
                            "Machines": {"ne": MACHINE_COUNTS[0]}},
                  "agg": "max"},
         "op": "gt",
         "right": {"col": "Throughput (q/s)",
                   "where": {"Dataset": name,
                             "Machines": MACHINE_COUNTS[0]}},
         "scales": ["full"]},
        {"kind": "cmp", "label": f"{name}: finer partitions cut more edges",
         "left": {"col": "Edge cut",
                  "where": {"Dataset": name,
                            "Machines": MACHINE_COUNTS[-1]}},
         "op": "gt",
         "right": {"col": "Edge cut",
                   "where": {"Dataset": name,
                             "Machines": MACHINE_COUNTS[0]}},
         "scales": ["full"]},
    )
]


def test_fig5a_machine_scaling(benchmark):
    rows, wall = common.timed(
        benchmark,
        lambda: [r for name in DATASET_NAMES for r in run_dataset(name)],
    )
    common.publish(
        "fig5a",
        "Figure 5(a): throughput vs machines (1 proc/machine)",
        rows, key=("Dataset", "Machines"),
        deterministic=("Edge cut", "Remote call share"),
        higher_is_better=("Throughput (q/s)",),
        expectations=EXPECTATIONS, wall_s=wall,
    )
    series = {
        name: [r for r in rows if r["Dataset"] == name]
        for name in DATASET_NAMES
    }
    for name, pts in series.items():
        benchmark.extra_info[name] = " -> ".join(
            f"{p['Machines']}m:{p['Throughput (q/s)']}" for p in pts
        )
