"""Figure 5(a) — throughput vs number of machines.

Paper setup: 256 queries, partitions = machines, one computing process per
machine, machines in {2, 4, 8}.  Paper observation: 2.5-3.5x speedup going
2 -> 8 machines, with the remote-traversal ratio rising as partitions
shrink (e.g. 3% -> 13% on Ogbn-products) and occasional super-linear steps
when partitioning happens to cut fewer edges (Twitter 2 -> 4).

Shape expectations here: throughput increases with machine count on every
dataset, while the measured remote-traffic share rises with K.
"""

from benchmarks.common import (
    DATASET_NAMES,
    assert_shapes,
    bench_scale,
    engine_config,
    get_sharded,
    print_and_store,
)
from repro.engine import GraphEngine
from repro.partition import edge_cut_fraction
from repro.ppr import PPRParams

MACHINE_COUNTS = (2, 4, 8)
PARAMS = PPRParams()


def run_dataset(name: str) -> list[dict]:
    scale = bench_scale()
    n_queries = max(MACHINE_COUNTS[-1], scale.queries)
    rows = []
    for k in MACHINE_COUNTS:
        sharded = get_sharded(name, k)
        engine = GraphEngine(sharded.graph, engine_config(k),
                             sharded=sharded)
        run = engine.run_queries(n_queries=n_queries, seed=17,
                                 params=PARAMS)
        cut = edge_cut_fraction(sharded.graph, sharded.result)
        remote_share = run.remote_requests / max(
            run.remote_requests + run.local_calls, 1
        )
        rows.append({
            "Dataset": name,
            "Machines": k,
            "Throughput (q/s)": round(run.throughput, 1),
            "Edge cut": round(cut, 3),
            "Remote call share": round(remote_share, 3),
        })
    return rows


def test_fig5a_machine_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: [r for name in DATASET_NAMES for r in run_dataset(name)],
        rounds=1, iterations=1,
    )
    print_and_store(
        "fig5a",
        "Figure 5(a): throughput vs machines (1 proc/machine)",
        rows,
    )
    series = {
        name: [r for r in rows if r["Dataset"] == name]
        for name in DATASET_NAMES
    }
    for name, pts in series.items():
        benchmark.extra_info[name] = " -> ".join(
            f"{p['Machines']}m:{p['Throughput (q/s)']}" for p in pts
        )
    if assert_shapes():
        for name, pts in series.items():
            # Scaling wins: some larger cluster beats 2 machines.  (The
            # per-point comparison 8m > 2m is noise-sensitive on this
            # substrate — small-touched-set datasets saturate near 8
            # machines where per-round RPC costs dominate, and measured
            # compute carries host jitter — so assert the robust envelope.)
            best_scaled = max(p["Throughput (q/s)"] for p in pts[1:])
            assert best_scaled > pts[0]["Throughput (q/s)"], name
            # finer partitions cut more edges
            assert pts[-1]["Edge cut"] > pts[0]["Edge cut"], name
