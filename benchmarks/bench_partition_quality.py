"""Ablation — partitioner quality and its effect on remote traffic.

The paper attributes much of the engine's efficiency to METIS min-cut
partitioning plus halo caching: "most of the nodes visited by the Forward
Push algorithm are locally available via shared memory".  This bench
quantifies that design choice: edge-cut fraction and the engine's measured
remote-call share under our multilevel partitioner vs. the random / hash /
BFS baselines.
"""

from benchmarks import common
from benchmarks.common import bench_scale, get_graph
from repro.engine import EngineConfig, GraphEngine, RunRequest
from repro.partition import (
    BfsPartitioner,
    HashPartitioner,
    MetisLitePartitioner,
    RandomPartitioner,
    edge_cut_fraction,
)
from repro.ppr import PPRParams
from repro.storage import build_shards

DATASET = "products"
N_MACHINES = 4

PARTITIONERS = (
    ("metis_lite", lambda: MetisLitePartitioner(seed=0)),
    ("bfs", lambda: BfsPartitioner(seed=0)),
    ("hash", lambda: HashPartitioner()),
    ("random", lambda: RandomPartitioner(seed=0)),
)


def run_partitioner(name: str, factory) -> dict:
    scale = bench_scale()
    graph = get_graph(DATASET)
    result = factory().partition(graph, N_MACHINES)
    sharded = build_shards(graph, result, seed=0)
    cfg = EngineConfig(n_machines=N_MACHINES, partitioner=factory())
    engine = GraphEngine(graph, cfg, sharded=sharded)
    run = engine.run(RunRequest(n_queries=scale.queries_small, seed=37,
                             params=PPRParams()))
    remote_share = run.remote_requests / max(
        run.remote_requests + run.local_calls, 1
    )
    return {
        "Partitioner": name,
        "Edge cut": round(edge_cut_fraction(graph, result), 3),
        "Remote call share": round(remote_share, 3),
        "Throughput (q/s)": round(run.throughput, 1),
    }


# min-cut partitioning slashes both the static cut and the dynamic
# remote traffic relative to random placement, and the BFS baseline sits
# in between on cut quality — all deterministic (seeded partitioners,
# RPC counters), but the margins assume full-size stand-ins
EXPECTATIONS = [
    {"kind": "cmp", "label": "min-cut slashes the edge cut",
     "left": {"col": "Edge cut", "where": {"Partitioner": "metis_lite"}},
     "op": "lt",
     "right": {"col": "Edge cut", "where": {"Partitioner": "random"}},
     "factor": 0.3, "scales": ["full"]},
    {"kind": "cmp", "label": "min-cut cuts dynamic remote traffic",
     "left": {"col": "Remote call share",
              "where": {"Partitioner": "metis_lite"}},
     "op": "lt",
     "right": {"col": "Remote call share",
               "where": {"Partitioner": "random"}},
     "scales": ["full"]},
    {"kind": "cmp", "label": "BFS baseline sits in between",
     "left": {"col": "Edge cut", "where": {"Partitioner": "metis_lite"}},
     "op": "le",
     "right": {"col": "Edge cut", "where": {"Partitioner": "bfs"}},
     "factor": 1.05, "scales": ["full"]},
]


def test_partition_quality(benchmark):
    rows, wall = common.timed(
        benchmark, lambda: [run_partitioner(n, f) for n, f in PARTITIONERS]
    )
    common.publish(
        "partition_quality",
        f"Partitioner ablation on {DATASET} ({N_MACHINES} shards)",
        rows, key=("Partitioner",),
        deterministic=("Edge cut", "Remote call share"),
        higher_is_better=("Throughput (q/s)",),
        expectations=EXPECTATIONS, wall_s=wall,
    )
    for row in rows:
        benchmark.extra_info[row["Partitioner"]] = (
            f"cut={row['Edge cut']} remote={row['Remote call share']}"
        )
