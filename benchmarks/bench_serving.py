"""Serving under open-loop load: SLO attainment and goodput curves.

A rate sweep of seeded Poisson arrivals is replayed through a
multi-tenant session (docs/serving.md) on a 2-machine deployment, once
clean and once with chaos (injected message drops + retries) layered on
top.  The sweep crosses the service capacity set by the deterministic
cost model, so the top loads saturate: the bounded queue fills, typed
rejections appear, latency climbs against the SLO, and goodput flattens
then falls — the overload curve the ROADMAP north star asks for.

Every reported number is virtual-clock output — admission counts,
latency percentiles, attainment, goodput all derive from the trace seed,
the cost model, and operator counts — so the whole table is exactly
reproducible and gated as deterministic.  Chaos rows pay a modeled
per-retry cost, which is why their goodput may trail the clean series at
the same load without ever changing a query result.
"""

import numpy as np

from benchmarks import common
from benchmarks.common import bench_scale, engine_config, get_sharded
from repro.engine import GraphEngine
from repro.ppr import PPRParams
from repro.rpc import RetryPolicy
from repro.serving import (
    ServiceCostModel,
    SessionConfig,
    TenantSpec,
    poisson_trace,
    serve_trace,
)
from repro.simt import FaultPlan

N_MACHINES = 2
DURATION = 0.2          # virtual seconds of arrivals per cell
SLO = 0.05              # virtual seconds per query
TRACE_SEED = 31
#: arrivals per virtual second; capacity under COST is ~300 q/s, so the
#: last two loads sit past saturation
RATES = (100, 200, 400, 800)
SATURATED = (400, 800)
TENANTS = (TenantSpec("gold", priority=2, quota=24, weight=2.0),
           TenantSpec("free", priority=0, quota=6, weight=1.0))
PARAMS = PPRParams(alpha=0.462, epsilon=1e-5)
#: deliberately heavy per-query cost to place saturation inside RATES
COST = ServiceCostModel(batch_overhead=4e-3, per_query=2e-3,
                        per_retry=2e-3)
CHAOS_PLAN = FaultPlan(seed=13, drop_prob=0.05)
CHAOS_POLICY = RetryPolicy(max_attempts=6, timeout=5.0)


def run_cell(engine, rate: float, series: str) -> dict:
    trace = poisson_trace(np.arange(engine.graph.n_nodes), rate=rate,
                          duration=DURATION, seed=TRACE_SEED,
                          tenants=TENANTS, walk_frac=0.1)
    chaos = series == "chaos"
    config = SessionConfig(
        tenants=TENANTS, queue_cap=16, batch_cap=8, slo=SLO,
        params=PARAMS, cost_model=COST,
        fault_plan=CHAOS_PLAN if chaos else None,
        retry_policy=CHAOS_POLICY if chaos else None,
    )
    r = serve_trace(engine, trace, config)
    return {
        "Load (q/s)": rate,
        "Series": series,
        "Saturated": rate in SATURATED,
        "Arrivals": r.arrivals,
        "Admitted": r.admitted,
        "Rejected": r.rejected,
        "Queue full": r.rejected_queue_full,
        "Quota": r.rejected_quota,
        "Completed": r.completed,
        "Missed": r.missed,
        "p50 (ms)": round(r.p50 * 1e3, 4),
        "p95 (ms)": round(r.p95 * 1e3, 4),
        "p99 (ms)": round(r.p99 * 1e3, 4),
        "Attainment": round(r.attainment, 6),
        "Goodput (q/s)": round(r.goodput, 3),
        "Throughput (q/s)": round(r.throughput, 3),
    }


EXPECTATIONS = [
    # conservation: every arrival is admitted or rejected, and the open
    # loop drains everything it admits
    {"kind": "all_true", "label": "admitted + rejected == arrivals",
     "col": "Conserved", "scales": "all"},
    # the overload story: past saturation the bounded queue pushes back
    {"kind": "per_row", "label": "overload produces rejections",
     "left_col": "Rejected", "op": "gt", "right": 0,
     "where": {"Saturated": True}, "scales": "all"},
    {"kind": "per_row", "label": "light load admits everything",
     "left_col": "Rejected", "op": "eq", "right": 0,
     "where": {"Load (q/s)": RATES[0]}, "scales": "all"},
    # goodput rises to saturation then is monotone-nonincreasing past it
    {"kind": "monotone", "label": "goodput nonincreasing past saturation",
     "col": "Goodput (q/s)", "direction": "decreasing", "strict": False,
     "order_col": "Load (q/s)", "group_by": "Series",
     "where": {"Saturated": True}, "scales": "all"},
    {"kind": "cmp", "label": "saturated goodput beats light-load goodput",
     "left": {"col": "Goodput (q/s)",
              "where": {"Load (q/s)": SATURATED[0], "Series": "clean"}},
     "op": "gt",
     "right": {"col": "Goodput (q/s)",
               "where": {"Load (q/s)": RATES[0], "Series": "clean"}},
     "scales": "all"},
    # SLO pressure: attainment never improves as load grows
    {"kind": "monotone", "label": "attainment nonincreasing with load",
     "col": "Attainment", "direction": "decreasing", "strict": False,
     "order_col": "Load (q/s)", "group_by": "Series", "scales": "all"},
    {"kind": "per_row", "label": "attainment is a fraction",
     "left_col": "Attainment", "op": "le", "right": 1, "scales": "all"},
    # chaos pays a modeled retry cost, never a correctness cost
    {"kind": "cmp", "label": "chaos goodput <= clean at top load",
     "left": {"col": "Goodput (q/s)",
              "where": {"Load (q/s)": RATES[-1], "Series": "chaos"}},
     "op": "le",
     "right": {"col": "Goodput (q/s)",
               "where": {"Load (q/s)": RATES[-1], "Series": "clean"}},
     "scales": "all"},
    {"kind": "cmp", "label": "chaos p95 >= clean p95 at top load",
     "left": {"col": "p95 (ms)",
              "where": {"Load (q/s)": RATES[-1], "Series": "chaos"}},
     "op": "ge",
     "right": {"col": "p95 (ms)",
               "where": {"Load (q/s)": RATES[-1], "Series": "clean"}},
     "scales": "all"},
]

#: every column is virtual-clock / counter output — exact replay expected
DETERMINISTIC = ("Arrivals", "Admitted", "Rejected", "Queue full", "Quota",
                 "Completed", "Missed", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                 "Attainment", "Goodput (q/s)", "Throughput (q/s)")


def test_serving_overload_curves(benchmark):
    bench_scale()  # scale shapes the graph only; load levels are fixed
    sharded = get_sharded("products", N_MACHINES)
    engine = GraphEngine(sharded.graph, engine_config(N_MACHINES),
                         sharded=sharded)

    def run_all():
        return [run_cell(engine, rate, series)
                for series in ("clean", "chaos") for rate in RATES]

    rows, wall = common.timed(benchmark, run_all)
    for row in rows:
        row["Conserved"] = (row["Admitted"] + row["Rejected"]
                            == row["Arrivals"]
                            and row["Admitted"] == row["Completed"])
    common.publish(
        "serving",
        "Multi-tenant serving under open-loop Poisson load on "
        f"ogbn-products ({N_MACHINES} machines, batched mode, "
        f"SLO {SLO * 1e3:g} ms)",
        rows, key=("Load (q/s)", "Series"),
        deterministic=DETERMINISTIC,
        higher_is_better=("Goodput (q/s)", "Attainment"),
        lower_is_better=("p95 (ms)", "Missed"),
        expectations=EXPECTATIONS, wall_s=wall,
        virtual_cols=("p50 (ms)", "p95 (ms)", "p99 (ms)",
                      "Goodput (q/s)", "Throughput (q/s)"),
    )
    top = rows[len(RATES) - 1]
    benchmark.extra_info["top_load"] = (
        f"goodput={top['Goodput (q/s)']} rejected={top['Rejected']} "
        f"attainment={top['Attainment']}"
    )
