"""Shared benchmark infrastructure.

Scale policy
------------
``REPRO_BENCH_SCALE`` selects how close each run is to the paper's setup:

* ``tiny``  — CI smoke: ~4% of stand-in sizes, few queries (seconds);
* ``small`` — 25% of stand-in sizes (quick iteration);
* ``full``  — default: the full stand-in sizes and larger query batches.

The default is ``full`` because several of the paper's orderings (Forward
Push vs. power iteration, tensor |V|-proportional costs) only separate from
interpreter noise once graphs reach the stand-in sizes; each bench declares
*which* of its expectations hold at which scales.

Dataset generation and partitioning are cached per process **keyed on the
resolved scale** (so flipping ``REPRO_BENCH_SCALE`` between calls in one
process can never serve a stale-scale graph), and graphs are disk-cached.

Every bench publishes two artifacts via :func:`publish`:

* ``benchmarks/results/<name>.txt`` — the human-readable table (as before);
* ``benchmarks/results/<name>.json`` — a schema-valid
  :class:`repro.obs.bench.BenchReport` with typed rows, the run's scale /
  git revision / environment fingerprint, a deterministic-vs-wall field
  split, declarative expectations, and (optionally) an embedded metrics
  snapshot.  ``repro.cli bench`` aggregates these into ``BENCH_<scale>.json``
  trajectories and diffs them against committed baselines — see
  ``docs/benchmarking.md``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.engine import EngineConfig
from repro.graph import load_dataset
from repro.graph.stats import format_table
from repro.obs.bench import BenchReport, evaluate_expectations, write_report
from repro.partition import MetisLitePartitioner
from repro.storage import build_shards

DATASET_NAMES = ("products", "twitter", "friendster", "papers")

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@dataclass(frozen=True)
class BenchScale:
    name: str
    graph_scale: float     # multiplier on stand-in node counts
    queries: int           # main query batch size
    queries_small: int     # for expensive modes (Single ablation, tensor)
    walk_roots: int


_SCALES = {
    "tiny": BenchScale("tiny", 0.04, 4, 2, 16),
    "small": BenchScale("small", 0.25, 8, 4, 32),
    "full": BenchScale("full", 1.0, 16, 8, 128),
}


def bench_scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "full").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


def get_graph(name: str):
    """Dataset stand-in at the current bench scale (disk-cached)."""
    return _get_graph(name, bench_scale())


@lru_cache(maxsize=None)
def _get_graph(name: str, scale: BenchScale):
    return load_dataset(name, scale=scale.graph_scale)


def get_sharded(name: str, n_shards: int):
    """Partitioned + shard-built graph, memoized per (dataset, K, scale)."""
    return _get_sharded(name, n_shards, bench_scale())


@lru_cache(maxsize=None)
def _get_sharded(name: str, n_shards: int, scale: BenchScale):
    graph = _get_graph(name, scale)
    result = MetisLitePartitioner(seed=0).partition(graph, n_shards)
    return build_shards(graph, result, seed=0)


def engine_config(n_machines: int, procs: int = 1, **kw) -> EngineConfig:
    return EngineConfig(n_machines=n_machines, procs_per_machine=procs,
                        partitioner=MetisLitePartitioner(seed=0), **kw)


def assert_shapes() -> bool:
    """Whether shape assertions should run (full scale only).

    Retained for ad-hoc scripts; the benches themselves now carry
    declarative per-scale ``expectations`` through :func:`publish`.
    """
    return bench_scale().name == "full"


def write_result(name: str, text: str) -> Path:
    """Persist a bench's printable table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def print_and_store(name: str, title: str, rows: list[dict]) -> str:
    """Format rows, print them, persist them; returns the text."""
    body = format_table(rows)
    text = f"== {title} ==\n{body}"
    print("\n" + text)
    write_result(name, text)
    return text


def _jsonable(v):
    """Coerce numpy scalars to plain Python so txt and json agree exactly."""
    if hasattr(v, "item") and not isinstance(v, (str, bytes)):
        return v.item()
    return v


def timed(benchmark, fn, *args):
    """Run ``fn`` once under pytest-benchmark; returns (result, wall_s)."""
    t0 = time.perf_counter()
    out = benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
    return out, time.perf_counter() - t0


def publish(name: str, title: str, rows: list[dict], *, key,
            deterministic=(), higher_is_better=(), lower_is_better=(),
            expectations=(), extra=None, metrics=None,
            wall_s: float | None = None, virtual_cols=(),
            check: bool = True) -> BenchReport:
    """Print + persist a bench's table AND its structured report.

    Writes ``results/<name>.txt`` and ``results/<name>.json``, then
    evaluates every declarative expectation active at the current scale and
    raises ``AssertionError`` listing the failures.  ``virtual_cols`` names
    row columns holding simulated (virtual-time) seconds; their sum is
    recorded as the report's ``virtual_s`` to split simulated time from the
    harness's measured ``wall_s``.
    """
    rows = [{k: _jsonable(v) for k, v in row.items()} for row in rows]
    extra = {k: _jsonable(v) for k, v in (extra or {}).items()}
    metrics = ({k: _jsonable(v) for k, v in metrics.items()}
               if metrics else None)
    print_and_store(name, title, rows)
    virtual_s = None
    if virtual_cols:
        virtual_s = float(sum(float(row[c]) for row in rows
                              for c in virtual_cols if c in row))
    report = BenchReport(
        name=name, title=title, scale=bench_scale().name, rows=rows,
        key=tuple(key), deterministic=tuple(deterministic),
        higher_is_better=tuple(higher_is_better),
        lower_is_better=tuple(lower_is_better),
        expectations=list(expectations),
        extra=extra, metrics=metrics,
        wall_s=wall_s, virtual_s=virtual_s,
    )
    write_report(RESULTS_DIR / f"{name}.json", report)
    if check:
        failures = evaluate_expectations(report.to_dict())
        if failures:
            raise AssertionError(
                f"{len(failures)} expectation(s) failed:\n  "
                + "\n  ".join(failures)
            )
    return report
