"""Shared benchmark infrastructure.

Scale policy
------------
``REPRO_BENCH_SCALE`` selects how close each run is to the paper's setup:

* ``tiny``  — CI smoke: ~4% of stand-in sizes, few queries (seconds);
* ``small`` — 25% of stand-in sizes (quick iteration);
* ``full``  — default: the full stand-in sizes and larger query batches.

The default is ``full`` because several of the paper's orderings (Forward
Push vs. power iteration, tensor |V|-proportional costs) only separate from
interpreter noise once graphs reach the stand-in sizes; sub-scale runs
print their tables but skip the shape assertions.

Dataset generation and partitioning are cached per process (and graphs per
disk cache), so sweeps reuse shards.  Every bench writes its result table to
``benchmarks/results/<name>.txt`` for inspection and for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.engine import EngineConfig
from repro.graph import load_dataset
from repro.graph.stats import format_table
from repro.partition import MetisLitePartitioner
from repro.storage import build_shards

DATASET_NAMES = ("products", "twitter", "friendster", "papers")

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@dataclass(frozen=True)
class BenchScale:
    name: str
    graph_scale: float     # multiplier on stand-in node counts
    queries: int           # main query batch size
    queries_small: int     # for expensive modes (Single ablation, tensor)
    walk_roots: int


_SCALES = {
    "tiny": BenchScale("tiny", 0.04, 4, 2, 16),
    "small": BenchScale("small", 0.25, 8, 4, 32),
    "full": BenchScale("full", 1.0, 16, 8, 128),
}


def bench_scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "full").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


@lru_cache(maxsize=None)
def get_graph(name: str):
    """Dataset stand-in at the current bench scale (disk-cached)."""
    return load_dataset(name, scale=bench_scale().graph_scale)


@lru_cache(maxsize=None)
def get_sharded(name: str, n_shards: int):
    """Partitioned + shard-built graph, memoized per (dataset, K)."""
    graph = get_graph(name)
    result = MetisLitePartitioner(seed=0).partition(graph, n_shards)
    return build_shards(graph, result, seed=0)


def engine_config(n_machines: int, procs: int = 1, **kw) -> EngineConfig:
    return EngineConfig(n_machines=n_machines, procs_per_machine=procs,
                        partitioner=MetisLitePartitioner(seed=0), **kw)


def assert_shapes() -> bool:
    """Whether shape assertions should run (full scale only)."""
    return bench_scale().name == "full"


def write_result(name: str, text: str) -> Path:
    """Persist a bench's printable table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def print_and_store(name: str, title: str, rows: list[dict]) -> str:
    """Format rows, print them, persist them; returns the text."""
    body = format_table(rows)
    text = f"== {title} ==\n{body}"
    print("\n" + text)
    write_result(name, text)
    return text
