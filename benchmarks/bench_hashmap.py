"""Microbenchmark — the vectorized sharded map vs a Python dict.

The paper's Section 3.3 rests on the parallel hashmap being fast at batch
updates.  Our NumPy emulation must beat the obvious alternative (a Python
dict driven from the interpreter) at engine-relevant batch sizes, otherwise
the "C++ operator" stand-in claim would be hollow.  Also records submap
load balance (the property that enables the paper's lock-free partitioned
updates).
"""

import numpy as np

from benchmarks import common
from repro.ppr.hashmap import ShardedMap

BATCH_SIZES = (1_000, 10_000, 100_000)


def dict_get_or_insert(d: dict, keys: np.ndarray) -> np.ndarray:
    out = np.empty(len(keys), dtype=np.int64)
    nxt = len(d)
    for i, k in enumerate(keys.tolist()):
        idx = d.get(k)
        if idx is None:
            d[k] = idx = nxt
            nxt += 1
        out[i] = idx
    return out


def time_once(fn) -> float:
    import time
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_batch_size(n: int) -> dict:
    rng = np.random.default_rng(41)
    keys = rng.integers(0, 2**40, size=n)
    fresh_keys = rng.integers(0, 2**40, size=n)

    m = ShardedMap()
    t_insert = time_once(lambda: m.get_or_insert(keys))
    t_lookup = time_once(lambda: m.lookup(keys))
    t_insert_more = time_once(lambda: m.get_or_insert(fresh_keys))

    d: dict = {}
    t_dict_insert = time_once(lambda: dict_get_or_insert(d, keys))
    t_dict_lookup = time_once(lambda: dict_get_or_insert(d, keys))

    balance = m.submap_sizes()
    return {
        "Batch": n,
        "Map insert (ms)": round(t_insert * 1e3, 2),
        "Map lookup (ms)": round(t_lookup * 1e3, 2),
        "Map 2nd insert (ms)": round(t_insert_more * 1e3, 2),
        "Dict insert (ms)": round(t_dict_insert * 1e3, 2),
        "Dict lookup (ms)": round(t_dict_lookup * 1e3, 2),
        "Submap max/mean": round(
            float(balance.max() / max(balance.mean(), 1e-9)), 2
        ),
    }


# at engine-scale batches the vectorized map clearly wins, and submaps
# stay usably balanced (the lock-free partitioning premise)
EXPECTATIONS = [
    {"kind": "cmp", "label": "map insert beats dict at engine batches",
     "left": {"col": "Map insert (ms)", "where": {"Batch": BATCH_SIZES[-1]}},
     "op": "lt",
     "right": {"col": "Dict insert (ms)",
               "where": {"Batch": BATCH_SIZES[-1]}},
     "scales": ["full"]},
    {"kind": "cmp", "label": "map lookup beats dict at engine batches",
     "left": {"col": "Map lookup (ms)", "where": {"Batch": BATCH_SIZES[-1]}},
     "op": "lt",
     "right": {"col": "Dict lookup (ms)",
               "where": {"Batch": BATCH_SIZES[-1]}},
     "scales": ["full"]},
    {"kind": "bounds", "label": "submaps stay balanced",
     "col": "Submap max/mean", "where": {"Batch": BATCH_SIZES[-1]},
     "hi": 1.6, "scales": "all"},
]


def test_hashmap_vs_dict(benchmark):
    rows, wall = common.timed(
        benchmark, lambda: [run_batch_size(n) for n in BATCH_SIZES]
    )
    common.publish(
        "hashmap",
        "ShardedMap vs Python dict (get_or_insert / lookup)",
        rows, key=("Batch",),
        deterministic=("Submap max/mean",),
        lower_is_better=("Map insert (ms)", "Map lookup (ms)",
                         "Map 2nd insert (ms)", "Dict insert (ms)",
                         "Dict lookup (ms)"),
        expectations=EXPECTATIONS, wall_s=wall,
    )
    for row in rows:
        benchmark.extra_info[f"batch{row['Batch']}"] = (
            f"map={row['Map insert (ms)']}ms dict={row['Dict insert (ms)']}ms"
        )
