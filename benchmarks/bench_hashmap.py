"""Microbenchmark — the vectorized sharded map vs a Python dict.

The paper's Section 3.3 rests on the parallel hashmap being fast at batch
updates.  Our NumPy emulation must beat the obvious alternative (a Python
dict driven from the interpreter) at engine-relevant batch sizes, otherwise
the "C++ operator" stand-in claim would be hollow.  Also records submap
load balance (the property that enables the paper's lock-free partitioned
updates).
"""

import numpy as np

from benchmarks.common import assert_shapes, print_and_store
from repro.ppr.hashmap import ShardedMap

BATCH_SIZES = (1_000, 10_000, 100_000)


def dict_get_or_insert(d: dict, keys: np.ndarray) -> np.ndarray:
    out = np.empty(len(keys), dtype=np.int64)
    nxt = len(d)
    for i, k in enumerate(keys.tolist()):
        idx = d.get(k)
        if idx is None:
            d[k] = idx = nxt
            nxt += 1
        out[i] = idx
    return out


def time_once(fn) -> float:
    import time
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_batch_size(n: int) -> dict:
    rng = np.random.default_rng(41)
    keys = rng.integers(0, 2**40, size=n)
    fresh_keys = rng.integers(0, 2**40, size=n)

    m = ShardedMap()
    t_insert = time_once(lambda: m.get_or_insert(keys))
    t_lookup = time_once(lambda: m.lookup(keys))
    t_insert_more = time_once(lambda: m.get_or_insert(fresh_keys))

    d: dict = {}
    t_dict_insert = time_once(lambda: dict_get_or_insert(d, keys))
    t_dict_lookup = time_once(lambda: dict_get_or_insert(d, keys))

    balance = m.submap_sizes()
    return {
        "Batch": n,
        "Map insert (ms)": round(t_insert * 1e3, 2),
        "Map lookup (ms)": round(t_lookup * 1e3, 2),
        "Map 2nd insert (ms)": round(t_insert_more * 1e3, 2),
        "Dict insert (ms)": round(t_dict_insert * 1e3, 2),
        "Dict lookup (ms)": round(t_dict_lookup * 1e3, 2),
        "Submap max/mean": round(
            float(balance.max() / max(balance.mean(), 1e-9)), 2
        ),
    }


def test_hashmap_vs_dict(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_batch_size(n) for n in BATCH_SIZES],
        rounds=1, iterations=1,
    )
    print_and_store(
        "hashmap",
        "ShardedMap vs Python dict (get_or_insert / lookup)",
        rows,
    )
    for row in rows:
        benchmark.extra_info[f"batch{row['Batch']}"] = (
            f"map={row['Map insert (ms)']}ms dict={row['Dict insert (ms)']}ms"
        )
    if assert_shapes():
        big = rows[-1]
        # at engine-scale batches the vectorized map clearly wins
        assert big["Map insert (ms)"] < big["Dict insert (ms)"]
        assert big["Map lookup (ms)"] < big["Dict lookup (ms)"]
        # submaps stay usably balanced (lock-free partitioning premise)
        assert big["Submap max/mean"] < 1.6
