"""Table 2 — SSPPR throughput of the three implementations.

Paper setup: 4 simulated machines, 3 computing processes each,
alpha = 0.462, epsilon = 1e-6; power iteration ("DGL SpMM") runs single-
machine at tol = 1e-10 and its throughput is multiplied by 4 (the paper's
idealized distribution).  Paper results (queries/second):

    dataset      DGL SpMM   PyTorch Tensor   PPR Engine
    products     1.676      11.92            981.7
    twitter      0.364      2.617            905.2
    friendster   0.236      1.202            1304.1
    papers       0.148      0.879            726.1

Shape expectations at reproduction scale: the implementation *ordering*
versus the tensor baseline is scale-dependent — on stand-ins ~1000x smaller
than the paper's graphs the dense tensor method's |V|-proportional terms
cost microseconds instead of milliseconds, so the hashmap engine's lead
over it only emerges as |V| grows (measured directly by
``bench_fig_scaling_crossover.py``; crossover lands around |V| ~ 2e5 and
the ratio widens with size toward the paper's 83-1085x at 2.5M-111M
nodes).  What must hold at any scale, and is asserted here: Forward Push
beats exact power iteration (the paper's 7.2x algorithmic claim), for both
Forward Push implementations.
"""

import time

from benchmarks import common
from benchmarks.common import (
    DATASET_NAMES,
    bench_scale,
    engine_config,
    get_sharded,
)
from repro.engine import GraphEngine, RunRequest
from repro.engine.query import sample_sources
from repro.ppr import PPRParams, power_iteration_ssppr
from repro.ppr.power_iteration import build_transition

PARAMS = PPRParams(alpha=0.462, epsilon=1e-6)
N_MACHINES = 4
PROCS = 3


def power_iteration_throughput(graph, sources) -> float:
    """Single-machine power iteration, idealized x4 (the paper's protocol)."""
    pt = build_transition(graph)
    start = time.perf_counter()
    for s in sources:
        power_iteration_ssppr(graph, int(s), alpha=PARAMS.alpha, pt=pt)
    elapsed = time.perf_counter() - start
    return len(sources) / elapsed * N_MACHINES


def run_dataset(name: str) -> dict:
    scale = bench_scale()
    sharded = get_sharded(name, N_MACHINES)
    engine = GraphEngine(sharded.graph, engine_config(N_MACHINES, PROCS),
                         sharded=sharded)
    sources = sample_sources(sharded, scale.queries, seed=11)
    # warm-up (the paper does 4 warm-up runs)
    engine.run(RunRequest(sources=sources[: max(2, len(sources) // 4)],
                       params=PARAMS))
    run_engine = engine.run(RunRequest(sources=sources, params=PARAMS))
    run_tensor = engine.run_tensor_queries(
        sources=sources[: scale.queries_small], params=PARAMS
    )
    pi_sources = sources[: max(2, scale.queries_small // 2)]
    thpt_pi = power_iteration_throughput(sharded.graph, pi_sources)
    return {
        "Dataset": name,
        "DGL SpMM": round(thpt_pi, 2),
        "PyTorch Tensor": round(run_tensor.throughput, 2),
        "PPR Engine": round(run_engine.throughput, 2),
        "Engine/SpMM": round(run_engine.throughput / thpt_pi, 1),
        "Tensor/SpMM": round(run_tensor.throughput / thpt_pi, 1),
    }


# The part of Table 2's ordering that holds at stand-in scale: both
# Forward Push implementations beat exact power iteration.
EXPECTATIONS = [
    {"kind": "per_row", "label": "engine beats power iteration",
     "left_col": "PPR Engine", "op": "gt", "right_col": "DGL SpMM",
     "scales": ["full"]},
    {"kind": "per_row", "label": "tensor beats power iteration",
     "left_col": "PyTorch Tensor", "op": "gt", "right_col": "DGL SpMM",
     "scales": ["full"]},
]


def test_table2_throughput(benchmark):
    rows, wall = common.timed(
        benchmark, lambda: [run_dataset(name) for name in DATASET_NAMES]
    )
    common.publish(
        "table2",
        "Table 2: SSPPR throughput (queries/s), 4 machines x 3 processes",
        rows, key=("Dataset",),
        higher_is_better=("DGL SpMM", "PyTorch Tensor", "PPR Engine",
                          "Engine/SpMM", "Tensor/SpMM"),
        expectations=EXPECTATIONS, wall_s=wall,
    )
    for row in rows:
        benchmark.extra_info[row["Dataset"]] = (
            f"spmm={row['DGL SpMM']} tensor={row['PyTorch Tensor']} "
            f"engine={row['PPR Engine']}"
        )
