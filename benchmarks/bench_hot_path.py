"""Micro-bench of the zero-copy local fetch path and the RPC buffer pool.

For each batch size, a contiguous id run (the arena-slice fast path)
and an equally-sized strided id set (the ``np.repeat`` gather fallback)
fetch the same shard; the table reports per-row latency for both, the
modeled response bytes of the view-backed batch vs its materialized
copy (these must be *equal* — the zero-copy path may not move a single
modeled byte), the number of tensors each backing actually owns (the
allocation count: 1 for the view path — the rebased indptr — vs 7 for
a full copy), and the buffer pool's hit rate as the per-row staged
request count grows (must be monotone increasing: inventory converges
to one response's demand, after which every borrow hits).

Wall columns (``ns/row``) move with the interpreter; everything the
regression gate diffs exactly is derived from shapes and dtypes alone.
"""

import time

import numpy as np

from benchmarks import common
from benchmarks.common import bench_scale, get_sharded
from repro.rpc.serialization import BufferPool, payload_sizes

N_MACHINES = 2

#: (batch size, pool responses staged) per row — requests grow with batch
CASES = ((16, 1), (64, 4), (256, 16), (1024, 64))


def _time_per_row(shard, ids, reps) -> float:
    t0 = time.perf_counter()
    for _ in range(reps):
        shard.get_neighbor_batch(ids)
    dt = time.perf_counter() - t0
    return dt / (reps * len(ids)) * 1e9


def _owned_tensors(batch) -> int:
    return sum(1 for a in batch.to_arrays() if a.base is None)


def run_case(shard, batch, n_responses) -> dict:
    n_core = shard.n_core
    b = min(batch, n_core // 2)
    reps = max(1, 20000 // b)
    contiguous = np.arange(b, dtype=np.int64)
    strided = np.arange(b, dtype=np.int64) * 2  # sorted, never contiguous
    view = shard.get_neighbor_batch(contiguous)
    copy = view.materialize()
    pool = BufferPool()
    for _ in range(n_responses):
        pool.stage(view)
    return {
        "Batch": b,
        "View ns/row": round(_time_per_row(shard, contiguous, reps), 1),
        "Gather ns/row": round(_time_per_row(shard, strided, reps), 1),
        "View bytes": payload_sizes(view)[0],
        "Copy bytes": payload_sizes(copy)[0],
        "View-owned tensors": _owned_tensors(view),
        "Copy-owned tensors": _owned_tensors(copy),
        "Pool reqs": pool.requests,
        "Pool hit %": round(100.0 * pool.hits / pool.requests, 2),
        "Pool bytes": pool.nbytes(),
    }


EXPECTATIONS = [
    {"kind": "per_row", "label": "zero-copy moves zero modeled bytes",
     "left_col": "View bytes", "op": "eq", "right_col": "Copy bytes",
     "scales": "all"},
    {"kind": "per_row", "label": "the view path owns almost nothing",
     "left_col": "View-owned tensors", "op": "lt",
     "right_col": "Copy-owned tensors", "scales": "all"},
    {"kind": "monotone", "label": "pool hit rate monotone in request count",
     "col": "Pool hit %", "order_col": "Pool reqs",
     "direction": "increasing", "strict": True, "scales": "all"},
    {"kind": "per_row", "label": "pool converges past 80% hits",
     "left_col": "Pool hit %", "op": "gt", "right": 80.0,
     "scales": "all", "where": {"Pool reqs": {"ge": 100}}},
    {"kind": "cmp", "label": "slicing beats gathering on big batches",
     "left": {"col": "View ns/row", "where": {"Batch": 1024}},
     "op": "lt",
     "right": {"col": "Gather ns/row", "where": {"Batch": 1024}},
     "scales": ["full"]},
]


def test_hot_path(benchmark):
    bench_scale()  # validate REPRO_BENCH_SCALE before any work
    shard = get_sharded("products", N_MACHINES).shards[0]

    def run_all():
        return [run_case(shard, batch, n_resp) for batch, n_resp in CASES]

    rows, wall = common.timed(benchmark, run_all)
    common.publish(
        "hot_path",
        "Zero-copy local fetch + RPC buffer pool "
        f"(ogbn-products shard 0 of {N_MACHINES})",
        rows,
        key=("Batch",),
        deterministic=("Batch", "View bytes", "Copy bytes",
                       "View-owned tensors", "Copy-owned tensors",
                       "Pool reqs", "Pool hit %", "Pool bytes"),
        lower_is_better=("View ns/row", "Gather ns/row"),
        expectations=EXPECTATIONS,
        wall_s=wall,
    )
