"""Accuracy of Forward Push vs power-iteration ground truth.

The paper (Section 4.2): with residual threshold eps = 1e-6, Forward Push
achieves 97%+ top-100 precision against power iteration at tol = 1e-10 —
and for downstream GNN tasks even eps = 1e-4 is comparable.  This bench
reproduces the precision numbers per dataset and records the L1 error
against the theoretical eps * sum(d_w) bound.
"""

import numpy as np

from benchmarks.common import (
    DATASET_NAMES,
    assert_shapes,
    get_graph,
    print_and_store,
)
from repro.ppr import (
    PPRParams,
    forward_push_parallel,
    l1_error,
    power_iteration_ssppr,
    topk_precision,
)
from repro.ppr.power_iteration import build_transition

EPSILONS = (1e-6, 1e-4)
N_SOURCES = 3


def run_dataset(name: str) -> list[dict]:
    graph = get_graph(name)
    pt = build_transition(graph)
    rng = np.random.default_rng(31)
    degrees = graph.out_degree()
    sources = rng.choice(np.flatnonzero(degrees > 0), size=N_SOURCES,
                         replace=False)
    rows = []
    for eps in EPSILONS:
        params = PPRParams(epsilon=eps)
        precisions, errors = [], []
        for s in sources:
            exact = power_iteration_ssppr(graph, int(s), alpha=params.alpha,
                                          pt=pt)
            approx, _, _ = forward_push_parallel(graph, int(s), params)
            precisions.append(topk_precision(approx, exact, 100))
            errors.append(l1_error(approx, exact))
        bound = eps * graph.weighted_degrees.sum()
        rows.append({
            "Dataset": name,
            "epsilon": f"{eps:g}",
            "Top-100 precision": round(float(np.mean(precisions)), 3),
            "L1 error": f"{np.mean(errors):.2e}",
            "L1 bound": f"{bound:.2e}",
        })
    return rows


def test_accuracy_vs_ground_truth(benchmark):
    rows = benchmark.pedantic(
        lambda: [r for name in DATASET_NAMES for r in run_dataset(name)],
        rounds=1, iterations=1,
    )
    print_and_store(
        "accuracy",
        "Forward Push accuracy vs power iteration (tol=1e-10) ground truth",
        rows,
    )
    for row in rows:
        benchmark.extra_info[f"{row['Dataset']}@{row['epsilon']}"] = (
            f"p@100={row['Top-100 precision']}"
        )
    if assert_shapes():
        for row in rows:
            assert float(row["L1 error"]) <= 1.01 * float(row["L1 bound"]), row
            if row["epsilon"] != "1e-06":
                continue
            if row["Dataset"] == "twitter":
                # Known scale artifact: the Twitter stand-in's PPR vectors
                # are nearly flat (weak communities + extreme hubs at 1000x
                # reduced |V|), so eps-level noise reshuffles a top-100
                # whose scores are barely separated.  Record, don't gate.
                continue
            # the paper's 97%+ claim at eps = 1e-6 (within measurement
            # slack on the smallest top-k margins)
            assert row["Top-100 precision"] >= 0.94, row
