"""Accuracy of Forward Push vs power-iteration ground truth.

The paper (Section 4.2): with residual threshold eps = 1e-6, Forward Push
achieves 97%+ top-100 precision against power iteration at tol = 1e-10 —
and for downstream GNN tasks even eps = 1e-4 is comparable.  This bench
reproduces the precision numbers per dataset and records the L1 error
against the theoretical eps * sum(d_w) bound.
"""

import numpy as np

from benchmarks import common
from benchmarks.common import DATASET_NAMES, get_graph
from repro.ppr import (
    PPRParams,
    forward_push_parallel,
    l1_error,
    power_iteration_ssppr,
    topk_precision,
)
from repro.ppr.power_iteration import build_transition

EPSILONS = (1e-6, 1e-4)
N_SOURCES = 3


def run_dataset(name: str) -> list[dict]:
    graph = get_graph(name)
    pt = build_transition(graph)
    rng = np.random.default_rng(31)
    degrees = graph.out_degree()
    sources = rng.choice(np.flatnonzero(degrees > 0), size=N_SOURCES,
                         replace=False)
    rows = []
    for eps in EPSILONS:
        params = PPRParams(epsilon=eps)
        precisions, errors = [], []
        for s in sources:
            exact = power_iteration_ssppr(graph, int(s), alpha=params.alpha,
                                          pt=pt)
            approx, _, _ = forward_push_parallel(graph, int(s), params)
            precisions.append(topk_precision(approx, exact, 100))
            errors.append(l1_error(approx, exact))
        bound = eps * graph.weighted_degrees.sum()
        rows.append({
            "Dataset": name,
            "epsilon": eps,
            "Top-100 precision": round(float(np.mean(precisions)), 3),
            "L1 error": float(f"{np.mean(errors):.3e}"),
            "L1 bound": float(f"{bound:.3e}"),
        })
    return rows


EXPECTATIONS = [
    # the eps * sum(d_w) L1 bound is a theorem — it holds at every scale
    {"kind": "per_row", "label": "L1 error within theoretical bound",
     "left_col": "L1 error", "op": "le", "right_col": "L1 bound",
     "factor": 1.01, "scales": "all"},
    # the paper's 97%+ claim at eps = 1e-6 (within measurement slack on
    # the smallest top-k margins).  Twitter is excluded — a known scale
    # artifact: the stand-in's PPR vectors are nearly flat (weak
    # communities + extreme hubs at 1000x reduced |V|), so eps-level
    # noise reshuffles a top-100 whose scores are barely separated.
    # Record, don't gate.
    {"kind": "per_row", "label": "top-100 precision at eps=1e-6",
     "left_col": "Top-100 precision", "op": "ge", "right": 0.94,
     "where": {"epsilon": 1e-6, "Dataset": {"ne": "twitter"}},
     "scales": ["full"]},
]


def test_accuracy_vs_ground_truth(benchmark):
    rows, wall = common.timed(
        benchmark,
        lambda: [r for name in DATASET_NAMES for r in run_dataset(name)],
    )
    common.publish(
        "accuracy",
        "Forward Push accuracy vs power iteration (tol=1e-10) ground truth",
        rows, key=("Dataset", "epsilon"),
        deterministic=("Top-100 precision", "L1 error", "L1 bound"),
        expectations=EXPECTATIONS, wall_s=wall,
    )
    for row in rows:
        benchmark.extra_info[f"{row['Dataset']}@{row['epsilon']:g}"] = (
            f"p@100={row['Top-100 precision']}"
        )
