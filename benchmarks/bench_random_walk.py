"""Distributed random walk throughput (the Figure 4 right-panel workload).

The paper's introduction measures Random Walk as the contrast case: a
fixed-frontier algorithm that tensor operations already serve well (its
engine gained only 1.7x there, vs 83x+ for Forward Push).  This bench
reports the distributed walk throughput of our storage layer across
machine counts — the workload stresses ``sample_one_neighbor`` batching
rather than PPR operators.
"""

from benchmarks.common import (
    assert_shapes,
    bench_scale,
    engine_config,
    get_sharded,
    print_and_store,
)
from repro.engine import GraphEngine

DATASET = "products"
WALK_LENGTH = 16
MACHINE_COUNTS = (2, 4)


def run_walks() -> list[dict]:
    scale = bench_scale()
    rows = []
    for k in MACHINE_COUNTS:
        sharded = get_sharded(DATASET, k)
        engine = GraphEngine(sharded.graph, engine_config(k),
                             sharded=sharded)
        run = engine.run_random_walks(n_roots=scale.walk_roots,
                                      walk_length=WALK_LENGTH, seed=59)
        rows.append({
            "Dataset": DATASET,
            "Machines": k,
            "Roots": len(run.roots),
            "Walk length": WALK_LENGTH,
            "Walks/s": round(run.throughput, 1),
            "Steps/s": round(run.throughput * WALK_LENGTH, 1),
        })
    return rows


def test_random_walk_throughput(benchmark):
    rows = benchmark.pedantic(run_walks, rounds=1, iterations=1)
    print_and_store(
        "random_walk",
        f"Distributed random walks on {DATASET} (length {WALK_LENGTH})",
        rows,
    )
    for row in rows:
        benchmark.extra_info[f"{row['Machines']}m"] = f"{row['Walks/s']} walks/s"
    if assert_shapes():
        assert all(row["Walks/s"] > 0 for row in rows)
        # Walks are communication-bound: each step is one batched RPC
        # round per machine pair, so adding machines adds server-side
        # contention instead of useful parallelism (the compute per step
        # is trivial).  Assert the runs stay within the same order of
        # magnitude rather than a scaling win the workload cannot give.
        assert rows[-1]["Walks/s"] > rows[0]["Walks/s"] * 0.25
