"""Distributed random walk throughput (the Figure 4 right-panel workload).

The paper's introduction measures Random Walk as the contrast case: a
fixed-frontier algorithm that tensor operations already serve well (its
engine gained only 1.7x there, vs 83x+ for Forward Push).  This bench
reports the distributed walk throughput of our storage layer across
machine counts — the workload stresses ``sample_one_neighbor`` batching
rather than PPR operators.
"""

from benchmarks import common
from benchmarks.common import bench_scale, engine_config, get_sharded
from repro.engine import GraphEngine

DATASET = "products"
WALK_LENGTH = 16
MACHINE_COUNTS = (2, 4)


def run_walks() -> list[dict]:
    scale = bench_scale()
    rows = []
    for k in MACHINE_COUNTS:
        sharded = get_sharded(DATASET, k)
        engine = GraphEngine(sharded.graph, engine_config(k),
                             sharded=sharded)
        run = engine.run_random_walks(n_roots=scale.walk_roots,
                                      walk_length=WALK_LENGTH, seed=59)
        rows.append({
            "Dataset": DATASET,
            "Machines": k,
            "Roots": len(run.roots),
            "Walk length": WALK_LENGTH,
            "Walks/s": round(run.throughput, 1),
            "Steps/s": round(run.throughput * WALK_LENGTH, 1),
        })
    return rows


# Walks are communication-bound: each step is one batched RPC round per
# machine pair, so adding machines adds server-side contention instead of
# useful parallelism (the compute per step is trivial).  Assert the runs
# stay within the same order of magnitude rather than a scaling win the
# workload cannot give.
EXPECTATIONS = [
    {"kind": "per_row", "label": "walks complete",
     "left_col": "Walks/s", "op": "gt", "right": 0, "scales": "all"},
    {"kind": "cmp", "label": "machine counts stay in one magnitude",
     "left": {"col": "Walks/s", "where": {"Machines": MACHINE_COUNTS[-1]}},
     "op": "gt",
     "right": {"col": "Walks/s", "where": {"Machines": MACHINE_COUNTS[0]}},
     "factor": 0.25, "scales": ["full"]},
]


def test_random_walk_throughput(benchmark):
    rows, wall = common.timed(benchmark, run_walks)
    common.publish(
        "random_walk",
        f"Distributed random walks on {DATASET} (length {WALK_LENGTH})",
        rows, key=("Dataset", "Machines"),
        deterministic=("Roots", "Walk length"),
        higher_is_better=("Walks/s", "Steps/s"),
        expectations=EXPECTATIONS, wall_s=wall,
    )
    for row in rows:
        benchmark.extra_info[f"{row['Machines']}m"] = f"{row['Walks/s']} walks/s"
