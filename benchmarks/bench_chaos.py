"""Chaos smoke benchmark — fault-injection overhead and resilience.

Three runs of the same query batch:

* ``clean``       — no fault plan; exercises the zero-overhead fast path
  (an empty plan must cost nothing: same dispatch code as pre-fault
  builds);
* ``drop 5%``     — 5% message loss with retries; throughput dips but
  every query completes exactly;
* ``crash+skip``  — one storage server down for the whole run under
  ``skip_remote`` degradation; the batch survives with bounded accuracy
  loss instead of failing.

Shape expectations: the clean run's counters are all zero; the lossy run
retries (retries == dropped messages when every drop is retransmitted and
eventually lands); the crashed run degrades some queries and writes off a
small residual mass.
"""

from benchmarks import common
from benchmarks.common import bench_scale, engine_config, get_sharded
from repro.engine import GraphEngine, RunRequest
from repro.engine.query import sample_sources
from repro.ppr import DegradationMode, PPRParams
from repro.rpc import RetryPolicy
from repro.simt import CrashWindow, FaultPlan

CHAOS_PARAMS = PPRParams(alpha=0.462, epsilon=1e-5)
N_MACHINES = 2

# Fault counters are replayable (FaultPlan decisions are order-
# independent — the differential tests prove it), so the zero-overhead
# claim is checkable at every scale; the faulty cases need enough
# messages in flight to guarantee a hit, so they gate at full.
EXPECTATIONS = [
    {"kind": "per_row", "label": "absent plan means zero fault-layer work",
     "left_col": "Retries", "op": "eq", "right": 0,
     "where": {"Case": "clean"}, "scales": "all"},
    {"kind": "per_row", "label": "clean run drops nothing",
     "left_col": "Dropped", "op": "eq", "right": 0,
     "where": {"Case": "clean"}, "scales": "all"},
    {"kind": "per_row", "label": "5% loss causes retransmissions",
     "left_col": "Retries", "op": "gt", "right": 0,
     "where": {"Case": "drop 5%"}, "scales": ["full"]},
    {"kind": "per_row", "label": "lossy run still completes every query",
     "left_col": "Degraded", "op": "eq", "right": 0,
     "where": {"Case": "drop 5%"}, "scales": "all"},
    {"kind": "per_row", "label": "dead server degrades instead of killing",
     "left_col": "Degraded", "op": "gt", "right": 0,
     "where": {"Case": "crash+skip"}, "scales": ["full"]},
    {"kind": "per_row", "label": "degradation writes off residual mass",
     "left_col": "Abandoned mass", "op": "gt", "right": 0,
     "where": {"Case": "crash+skip"}, "scales": ["full"]},
]


def run_case(engine, sources, label: str, request: RunRequest) -> dict:
    run = engine.run(request)
    return {
        "Case": label,
        "q/s": round(run.throughput, 1),
        "Total (s)": round(run.makespan, 4),
        "Retries": run.retries,
        "Timeouts": run.timeouts,
        "Dropped": run.dropped_messages,
        "Degraded": run.degraded_queries,
        "Abandoned mass": round(run.abandoned_mass, 6),
    }


def test_chaos_smoke(benchmark):
    scale = bench_scale()
    sharded = get_sharded("friendster", N_MACHINES)
    engine = GraphEngine(sharded.graph, engine_config(N_MACHINES),
                         sharded=sharded)
    sources = sample_sources(sharded, scale.queries_small, seed=13)
    policy = RetryPolicy(max_attempts=6, timeout=0.05)
    cases = (
        ("clean", RunRequest(sources=sources, params=CHAOS_PARAMS)),
        ("drop 5%", RunRequest(
            sources=sources, params=CHAOS_PARAMS,
            fault_plan=FaultPlan(seed=7, drop_prob=0.05),
            retry_policy=policy,
        )),
        ("crash+skip", RunRequest(
            sources=sources, params=CHAOS_PARAMS,
            fault_plan=FaultPlan(seed=7, crashes=(
                CrashWindow(server="server:1", crash_at=0.0),
            )),
            retry_policy=RetryPolicy(max_attempts=2, timeout=0.01),
            degradation=DegradationMode.SKIP_REMOTE,
        )),
    )

    def run_all():
        return [run_case(engine, sources, label, req)
                for label, req in cases]

    rows, wall = common.timed(benchmark, run_all)
    common.publish(
        "chaos",
        "Chaos smoke: fault injection on Friendster "
        f"({N_MACHINES} machines, eps={CHAOS_PARAMS.epsilon:g})",
        rows, key=("Case",),
        deterministic=("Retries", "Timeouts", "Dropped", "Degraded",
                       "Abandoned mass"),
        higher_is_better=("q/s",), lower_is_better=("Total (s)",),
        expectations=EXPECTATIONS, wall_s=wall, virtual_cols=("Total (s)",),
    )
    for row in rows:
        benchmark.extra_info[row["Case"]] = (
            f"qps={row['q/s']} retries={row['Retries']} "
            f"degraded={row['Degraded']}"
        )
