"""Chaos smoke benchmark — fault-injection overhead and resilience.

Three runs of the same query batch:

* ``clean``       — no fault plan; exercises the zero-overhead fast path
  (an empty plan must cost nothing: same dispatch code as pre-fault
  builds);
* ``drop 5%``     — 5% message loss with retries; throughput dips but
  every query completes exactly;
* ``crash+skip``  — one storage server down for the whole run under
  ``skip_remote`` degradation; the batch survives with bounded accuracy
  loss instead of failing.

Shape expectations: the clean run's counters are all zero; the lossy run
retries (retries == dropped messages when every drop is retransmitted and
eventually lands); the crashed run degrades some queries and writes off a
small residual mass.
"""

from benchmarks.common import (
    assert_shapes,
    bench_scale,
    engine_config,
    get_sharded,
    print_and_store,
)
from repro.engine import GraphEngine, RunRequest
from repro.engine.query import sample_sources
from repro.ppr import DegradationMode, PPRParams
from repro.rpc import RetryPolicy
from repro.simt import CrashWindow, FaultPlan

CHAOS_PARAMS = PPRParams(alpha=0.462, epsilon=1e-5)
N_MACHINES = 2


def run_case(engine, sources, label: str, request: RunRequest) -> dict:
    run = engine.run(request)
    return {
        "Case": label,
        "q/s": round(run.throughput, 1),
        "Total (s)": round(run.makespan, 4),
        "Retries": run.retries,
        "Timeouts": run.timeouts,
        "Dropped": run.dropped_messages,
        "Degraded": run.degraded_queries,
        "Abandoned mass": round(run.abandoned_mass, 6),
    }


def test_chaos_smoke(benchmark):
    scale = bench_scale()
    sharded = get_sharded("friendster", N_MACHINES)
    engine = GraphEngine(sharded.graph, engine_config(N_MACHINES),
                         sharded=sharded)
    sources = sample_sources(sharded, scale.queries_small, seed=13)
    policy = RetryPolicy(max_attempts=6, timeout=0.05)
    cases = (
        ("clean", RunRequest(sources=sources, params=CHAOS_PARAMS)),
        ("drop 5%", RunRequest(
            sources=sources, params=CHAOS_PARAMS,
            fault_plan=FaultPlan(seed=7, drop_prob=0.05),
            retry_policy=policy,
        )),
        ("crash+skip", RunRequest(
            sources=sources, params=CHAOS_PARAMS,
            fault_plan=FaultPlan(seed=7, crashes=(
                CrashWindow(server="server:1", crash_at=0.0),
            )),
            retry_policy=RetryPolicy(max_attempts=2, timeout=0.01),
            degradation=DegradationMode.SKIP_REMOTE,
        )),
    )

    def run_all():
        return [run_case(engine, sources, label, req)
                for label, req in cases]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_and_store(
        "chaos",
        "Chaos smoke: fault injection on Friendster "
        f"({N_MACHINES} machines, eps={CHAOS_PARAMS.epsilon:g})",
        rows,
    )
    for row in rows:
        benchmark.extra_info[row["Case"]] = (
            f"qps={row['q/s']} retries={row['Retries']} "
            f"degraded={row['Degraded']}"
        )
    by = {r["Case"]: r for r in rows}
    if assert_shapes():
        # An absent plan means zero fault-layer work.
        assert by["clean"]["Retries"] == by["clean"]["Dropped"] == 0
        # 5% loss: some retransmissions, every query still completes.
        assert by["drop 5%"]["Retries"] > 0
        assert by["drop 5%"]["Degraded"] == 0
        # A dead server degrades queries instead of killing the batch.
        assert by["crash+skip"]["Degraded"] > 0
        assert by["crash+skip"]["Abandoned mass"] > 0
