"""Benchmark-suite configuration.

These modules measure *system behaviour* (virtual-time throughput, phase
breakdowns), so each pytest-benchmark entry runs a small fixed number of
rounds via ``benchmark.pedantic`` and reports the paper-comparable metrics
through ``benchmark.extra_info`` and per-module result files under
``benchmarks/results/``.
"""

import sys
from pathlib import Path

# Make `benchmarks.common` importable when pytest is invoked on this dir.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
