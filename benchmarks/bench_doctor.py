"""Trace analytics cost and verdicts (docs/observability.md).

Runs traced query batches of growing size, with the adaptive fetch
layer on and bypassed, and times ``diagnose(run)`` — the full causal
critical-path extraction plus report assembly — against each trace.

Two things are gated:

* **accounting** — every extracted path must be total-conserving
  (segments partition the query span exactly) and fit inside the run's
  makespan, at every trace size and fetch configuration;
* **the fetch-layer story read off the path** — the share of critical
  seconds spent waiting on remote fetches (network + server execution)
  must *shrink* when the fetch layer is enabled: cached and coalesced
  rows never reach the wire, so the path re-attributes that time to
  local compute.

Analyze wall time is reported per trace size (the doctor is pure
post-processing — its cost must stay far below the run it explains)
but not gated: it is host-measured, not virtual.
"""

import time

from benchmarks import common
from benchmarks.common import bench_scale, engine_config, get_sharded
from repro.engine import GraphEngine, RunRequest
from repro.engine.query import sample_sources
from repro.obs.analysis import diagnose
from repro.ppr import OptLevel, PPRParams

PARAMS = PPRParams(alpha=0.462, epsilon=1e-5)
N_MACHINES = 2


def run_case(engine, sources, *, label, fetch) -> dict:
    run = engine.run(RunRequest(
        sources=sources, params=PARAMS, opt=OptLevel.OVERLAP,
        trace=True, timeline=0.05,
        **({} if fetch else {"fetch_split": False, "fetch_cache_bytes": 0}),
    ))
    t0 = time.perf_counter()
    report = diagnose(run)
    analyze_ms = (time.perf_counter() - t0) * 1e3
    remote_s = (report.phase_totals.get("remote_fetch", 0.0)
                + report.phase_totals.get("serve", 0.0))
    share = remote_s / report.path_total_s if report.path_total_s else 0.0
    return {
        "Case": label,
        "Queries": len(sources),
        "Spans": len(run.obs.tracer),
        "Analyze (ms)": round(analyze_ms, 2),
        "Paths": report.n_paths,
        "Path total (s)": round(report.path_total_s, 4),
        "Remote share %": round(share * 100, 2),
        "Conserving": report.conservation_error <= 1e-9,
        "Within makespan": report.paths_within_makespan,
        "Complete": not report.trace_incomplete,
    }


EXPECTATIONS = [
    {"kind": "all_true", "label": "paths are total-conserving everywhere",
     "col": "Conserving", "scales": "all"},
    {"kind": "all_true", "label": "every path fits inside the makespan",
     "col": "Within makespan", "scales": "all"},
    {"kind": "all_true", "label": "no trace hit the span cap",
     "col": "Complete", "scales": "all"},
    {"kind": "per_row", "label": "one critical path per query",
     "left_col": "Paths", "op": "eq", "right_col": "Queries",
     "scales": "all"},
    {"kind": "cmp",
     "label": "fetch layer shrinks the remote-fetch path share",
     "left": {"col": "Remote share %", "where": {"Case": "fetch-on"}},
     "op": "lt",
     "right": {"col": "Remote share %", "where": {"Case": "fetch-off"}},
     "scales": "all"},
    {"kind": "cmp", "label": "bigger batches record bigger traces",
     "left": {"col": "Spans", "where": {"Case": "fetch-on 2x"}},
     "op": "gt",
     "right": {"col": "Spans", "where": {"Case": "fetch-on"}},
     "scales": "all"},
]


def test_doctor_analytics(benchmark):
    scale = bench_scale()
    sharded = get_sharded("products", N_MACHINES)
    engine = GraphEngine(sharded.graph, engine_config(N_MACHINES),
                         sharded=sharded)
    sources = sample_sources(sharded, scale.queries, seed=29)
    sources_2x = sample_sources(sharded, 2 * scale.queries, seed=29)

    def run_all():
        return [
            run_case(engine, sources, label="fetch-on", fetch=True),
            run_case(engine, sources, label="fetch-off", fetch=False),
            run_case(engine, sources_2x, label="fetch-on 2x", fetch=True),
        ]

    rows, wall = common.timed(benchmark, run_all)
    common.publish(
        "doctor",
        "Critical-path analytics: analyze cost and fetch-layer path share "
        f"(ogbn-products, {N_MACHINES} machines)",
        rows, key=("Case",),
        deterministic=("Queries", "Paths", "Conserving", "Within makespan",
                       "Complete"),
        lower_is_better=("Analyze (ms)", "Remote share %"),
        expectations=EXPECTATIONS, wall_s=wall,
        virtual_cols=("Path total (s)",),
    )
    for row in rows:
        benchmark.extra_info[row["Case"]] = (
            f"spans={row['Spans']} analyze_ms={row['Analyze (ms)']}"
        )
