"""Engine generality — BFS, node2vec, FORA on the same storage layer.

Section 3.1: "our proposed PPR engine can be easily extended to other graph
processing algorithms, enabling efficient distributed computing for
localized C++ graph operators."  This bench exercises that claim with three
algorithms sharing the identical storage/RPC substrate:

* level-synchronous distributed BFS (the paper's other named frontier
  algorithm);
* second-order node2vec walks (the harder random-walk workload);
* FORA hybrid SSPPR (push + Monte-Carlo, the paper's reference [25]).
"""

import time

import numpy as np

from benchmarks import common
from benchmarks.common import bench_scale, engine_config, get_sharded
from repro.engine.cluster import SimCluster
from repro.ppr import fora_ssppr, power_iteration_ssppr, topk_precision
from repro.storage import DistGraphStorage
from repro.walk import distributed_bfs, distributed_node2vec_walk, single_machine_bfs

DATASET = "products"
N_MACHINES = 4


def run_bfs(sharded) -> dict:
    cluster = SimCluster(sharded, engine_config(N_MACHINES))
    name = "compute:0.0"
    g = DistGraphStorage(cluster.rrefs, 0, name)
    source_local = int(sharded.owner_local[sharded.shards[0].core_global[0]])

    def driver():
        proc = cluster.scheduler.processes[name]
        state = yield from distributed_bfs(g, proc, source_local)
        return state

    cluster.spawn_compute(0, 0, driver())
    makespan = cluster.run()
    state = cluster.scheduler.result_of(name)
    source = int(sharded.shards[0].core_global[0])
    expected = single_machine_bfs(sharded.graph, source)
    got = state.dense_depths(sharded, sharded.graph.n_nodes)
    return {
        "Algorithm": "distributed BFS",
        "Work": f"{len(state.map)} nodes reached",
        "Virtual time (s)": round(makespan, 4),
        "Correct": bool(np.array_equal(got, expected)),
    }


def run_node2vec(sharded) -> dict:
    scale = bench_scale()
    cluster = SimCluster(sharded, engine_config(N_MACHINES))
    name = "compute:0.0"
    g = DistGraphStorage(cluster.rrefs, 0, name)
    roots = sharded.shards[0].core_global[: scale.walk_roots // 2]

    def driver():
        proc = cluster.scheduler.processes[name]
        summary = yield from distributed_node2vec_walk(
            g, proc, roots, sharded, 8, p=0.5, q=2.0, seed=71
        )
        return summary

    cluster.spawn_compute(0, 0, driver())
    makespan = cluster.run()
    summary = cluster.scheduler.result_of(name)
    valid = all(
        summary[i, s] == summary[i, s + 1]
        or sharded.graph.has_arc(int(summary[i, s]), int(summary[i, s + 1]))
        for i in range(min(8, len(summary))) for s in range(8)
    )
    return {
        "Algorithm": "node2vec (p=0.5,q=2)",
        "Work": f"{len(roots)} walks x 8 steps",
        "Virtual time (s)": round(makespan, 4),
        "Correct": valid,
    }


def run_fora(sharded) -> dict:
    graph = sharded.graph
    source = int(sharded.shards[0].core_global[0])
    start = time.perf_counter()
    est = fora_ssppr(graph, source, push_epsilon=1e-3,
                     walks_per_unit=20_000, seed=73)
    elapsed = time.perf_counter() - start
    exact = power_iteration_ssppr(graph, source, alpha=0.462)
    return {
        "Algorithm": "FORA (push+MC)",
        "Work": "1 query",
        "Virtual time (s)": round(elapsed, 4),
        "Correct": bool(topk_precision(est, exact, 50) >= 0.8),
    }


# correctness against single-machine references holds at every scale
EXPECTATIONS = [
    {"kind": "all_true", "label": "all algorithms correct",
     "col": "Correct", "scales": "all"},
]


def test_engine_generality(benchmark):
    sharded = get_sharded(DATASET, N_MACHINES)
    rows, wall = common.timed(
        benchmark,
        lambda: [run_bfs(sharded), run_node2vec(sharded), run_fora(sharded)],
    )
    common.publish(
        "generality",
        f"Engine generality on {DATASET}: other algorithms on the same "
        "storage/RPC substrate",
        rows, key=("Algorithm",),
        deterministic=("Correct",),
        lower_is_better=("Virtual time (s)",),
        expectations=EXPECTATIONS, wall_s=wall,
        virtual_cols=("Virtual time (s)",),
    )
    for row in rows:
        benchmark.extra_info[row["Algorithm"]] = (
            f"t={row['Virtual time (s)']}s ok={row['Correct']}"
        )
