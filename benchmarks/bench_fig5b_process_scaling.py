"""Figure 5(b) — inter-SSPPR parallelism: strong and weak scaling.

Paper setup: 2 machines, 1..8 computing processes per machine.

* strong scaling: 128 queries total, fixed, split over all processes;
  paper reports 4.8-5.5x speedup at 8 processes (workload imbalance limits
  it when per-process query counts get small);
* weak scaling: 128 queries *per process*; paper reports 6.4-7.8x
  (near-linear — each process has enough work to stay busy).

Shape expectations: throughput rises with process count in both modes;
weak-scaling efficiency at 8 processes beats strong-scaling efficiency.
"""

from benchmarks import common
from benchmarks.common import (
    DATASET_NAMES,
    bench_scale,
    engine_config,
    get_sharded,
)
from repro.engine import GraphEngine, RunRequest
from repro.ppr import PPRParams

N_MACHINES = 2
PROC_COUNTS = (1, 2, 4, 8)
PARAMS = PPRParams()


def run_dataset(name: str) -> list[dict]:
    scale = bench_scale()
    strong_total = 4 * scale.queries          # fixed problem size
    weak_per_proc = max(2, scale.queries // 2)
    sharded = get_sharded(name, N_MACHINES)
    rows = []
    for procs in PROC_COUNTS:
        engine = GraphEngine(
            sharded.graph, engine_config(N_MACHINES, procs), sharded=sharded
        )
        strong = engine.run(RunRequest(n_queries=strong_total, seed=19,
                                    params=PARAMS))
        weak = engine.run(RunRequest(
            n_queries=weak_per_proc * procs * N_MACHINES, seed=23,
            params=PARAMS,
        ))
        rows.append({
            "Dataset": name,
            "Procs/machine": procs,
            "Strong thpt": round(strong.throughput, 1),
            "Strong time (s)": round(strong.makespan, 4),
            "Weak thpt": round(weak.throughput, 1),
            "Weak time (s)": round(weak.makespan, 4),
        })
    return rows


def _at(name: str, col: str, procs: int) -> dict:
    return {"col": col, "where": {"Dataset": name, "Procs/machine": procs}}


# Both modes scale meaningfully with 8x the processes, and the two modes
# stay within the same ballpark.  (The paper's weak > strong ordering
# comes from strong scaling starving at 128/16 = 8 queries per process;
# at bench scale both modes are near-linear and run-to-run measurement
# noise can put either ahead, so only a loose ratio is asserted.)
EXPECTATIONS = [
    exp for name in DATASET_NAMES for exp in (
        {"kind": "ratio", "label": f"{name}: strong speedup > 2x",
         "left": [_at(name, "Strong thpt", PROC_COUNTS[-1]),
                  _at(name, "Strong thpt", PROC_COUNTS[0])],
         "op": "gt", "right": 2.0, "scales": ["full"]},
        {"kind": "ratio", "label": f"{name}: weak speedup > 2x",
         "left": [_at(name, "Weak thpt", PROC_COUNTS[-1]),
                  _at(name, "Weak thpt", PROC_COUNTS[0])],
         "op": "gt", "right": 2.0, "scales": ["full"]},
        {"kind": "ratio", "label": f"{name}: weak vs strong ballpark",
         "left": [_at(name, "Weak thpt", PROC_COUNTS[-1]),
                  _at(name, "Weak thpt", PROC_COUNTS[0])],
         "op": "ge",
         "right": [_at(name, "Strong thpt", PROC_COUNTS[-1]),
                   _at(name, "Strong thpt", PROC_COUNTS[0])],
         "factor": 0.4, "scales": ["full"]},
    )
]


def test_fig5b_process_scaling(benchmark):
    rows, wall = common.timed(
        benchmark,
        lambda: [r for name in DATASET_NAMES for r in run_dataset(name)],
    )
    common.publish(
        "fig5b",
        f"Figure 5(b): strong/weak scaling over processes ({N_MACHINES} machines)",
        rows, key=("Dataset", "Procs/machine"),
        higher_is_better=("Strong thpt", "Weak thpt"),
        lower_is_better=("Strong time (s)", "Weak time (s)"),
        expectations=EXPECTATIONS, wall_s=wall,
        virtual_cols=("Strong time (s)", "Weak time (s)"),
    )
    series = {
        name: [r for r in rows if r["Dataset"] == name]
        for name in DATASET_NAMES
    }
    for name, pts in series.items():
        benchmark.extra_info[name] = " -> ".join(
            f"p{p['Procs/machine']}:{p['Strong thpt']}/{p['Weak thpt']}"
            for p in pts
        )
