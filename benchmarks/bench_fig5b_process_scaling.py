"""Figure 5(b) — inter-SSPPR parallelism: strong and weak scaling.

Paper setup: 2 machines, 1..8 computing processes per machine.

* strong scaling: 128 queries total, fixed, split over all processes;
  paper reports 4.8-5.5x speedup at 8 processes (workload imbalance limits
  it when per-process query counts get small);
* weak scaling: 128 queries *per process*; paper reports 6.4-7.8x
  (near-linear — each process has enough work to stay busy).

Shape expectations: throughput rises with process count in both modes;
weak-scaling efficiency at 8 processes beats strong-scaling efficiency.
"""

from benchmarks.common import (
    DATASET_NAMES,
    assert_shapes,
    bench_scale,
    engine_config,
    get_sharded,
    print_and_store,
)
from repro.engine import GraphEngine
from repro.ppr import PPRParams

N_MACHINES = 2
PROC_COUNTS = (1, 2, 4, 8)
PARAMS = PPRParams()


def run_dataset(name: str) -> list[dict]:
    scale = bench_scale()
    strong_total = 4 * scale.queries          # fixed problem size
    weak_per_proc = max(2, scale.queries // 2)
    sharded = get_sharded(name, N_MACHINES)
    rows = []
    for procs in PROC_COUNTS:
        engine = GraphEngine(
            sharded.graph, engine_config(N_MACHINES, procs), sharded=sharded
        )
        strong = engine.run_queries(n_queries=strong_total, seed=19,
                                    params=PARAMS)
        weak = engine.run_queries(
            n_queries=weak_per_proc * procs * N_MACHINES, seed=23,
            params=PARAMS,
        )
        rows.append({
            "Dataset": name,
            "Procs/machine": procs,
            "Strong thpt": round(strong.throughput, 1),
            "Strong time (s)": round(strong.makespan, 4),
            "Weak thpt": round(weak.throughput, 1),
            "Weak time (s)": round(weak.makespan, 4),
        })
    return rows


def test_fig5b_process_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: [r for name in DATASET_NAMES for r in run_dataset(name)],
        rounds=1, iterations=1,
    )
    print_and_store(
        "fig5b",
        f"Figure 5(b): strong/weak scaling over processes ({N_MACHINES} machines)",
        rows,
    )
    series = {
        name: [r for r in rows if r["Dataset"] == name]
        for name in DATASET_NAMES
    }
    for name, pts in series.items():
        benchmark.extra_info[name] = " -> ".join(
            f"p{p['Procs/machine']}:{p['Strong thpt']}/{p['Weak thpt']}"
            for p in pts
        )
    if assert_shapes():
        for name, pts in series.items():
            p1, p8 = pts[0], pts[-1]
            strong_speedup = p8["Strong thpt"] / p1["Strong thpt"]
            weak_speedup = p8["Weak thpt"] / p1["Weak thpt"]
            # both scale meaningfully with 8x the processes...
            assert strong_speedup > 2.0, (name, strong_speedup)
            assert weak_speedup > 2.0, (name, weak_speedup)
            # ...and the two modes stay within the same ballpark.  (The
            # paper's weak > strong ordering comes from strong scaling
            # starving at 128/16 = 8 queries per process; at bench scale
            # both modes are near-linear and run-to-run measurement noise
            # can put either ahead, so only a loose ratio is asserted.)
            assert weak_speedup >= 0.4 * strong_speedup, (
                name, strong_speedup, weak_speedup
            )
