"""Incremental PPR maintenance vs. recompute-from-scratch (docs/streaming.md).

One streaming session per update rate: publish a batch of sources, then
stream edge-update batches through the two-phase shard protocol while
the published vectors are maintained by residual correction + signed
re-push.  The recompute column counts what a from-scratch Forward Push
of every published source after every batch would have cost — the
policy the incremental path replaces.

Both answer within the same ``eps * sum(wdeg)`` accuracy bound (pinned
bitwise-tight by the tier-1 equivalence suite); what changes is the
work: incremental pushes must stay well under recompute pushes at every
update rate, and the gap is the point of the subsystem.  All push and
byte counts here are deterministic operator counts on virtual time, so
they replay exactly.
"""

import numpy as np

from benchmarks import common
from benchmarks.common import bench_scale, engine_config, get_graph
from repro.engine import GraphEngine
from repro.ppr import PPRParams
from repro.ppr.forward_push_seq import forward_push_sequential
from repro.stream import (StreamConfig, StreamEvent, StreamingSession,
                          TemporalEdgeStream)

PARAMS = PPRParams(alpha=0.2, epsilon=1e-4)
N_MACHINES = 2
N_BATCHES = 4
N_PUBLISH = 3

#: arcs per update batch — the streamed update rate
RATES = (8, 32, 128)


def run_rate(graph, sources, rate) -> dict:
    engine = GraphEngine(graph, engine_config(N_MACHINES))
    session = StreamingSession(engine, StreamConfig(
        runtime="sim", params=PARAMS, refresh_every=1))
    session.publish(sources)

    stream = TemporalEdgeStream(graph, seed=41, batch_size=rate)
    recompute_pushes = 0
    for batch in stream.batches(N_BATCHES):
        session.run_stream([StreamEvent("update", batch=batch)])
        snap = session.dyn.snapshot()
        for gid in sources:
            _, _, stats = forward_push_sequential(snap, int(gid), PARAMS)
            recompute_pushes += stats.n_pushes
    c = session.metrics.counters()
    inc_pushes = int(c.get("stream.refresh_pushes", 0))
    return {
        "Arcs/batch": rate,
        "Batches": N_BATCHES,
        "Staged rows": int(c.get("stream.staged_rows", 0)),
        "Ingest bytes": int(c.get("rpc.request_bytes", 0)
                            + c.get("rpc.response_bytes", 0)),
        "Inc. corrections": int(c.get("stream.refresh_corrections", 0)),
        "Inc. pushes": inc_pushes,
        "Recompute pushes": recompute_pushes,
        "Push ratio": round(recompute_pushes / max(inc_pushes, 1), 1),
        "Clock (s)": round(session.report.clock, 4),
    }


EXPECTATIONS = [
    {"kind": "per_row", "label": "incremental beats recompute on pushes",
     "left_col": "Inc. pushes", "op": "lt", "right_col": "Recompute pushes",
     "scales": "all"},
    {"kind": "per_row", "label": "every batch stages rows on every shard",
     "left_col": "Staged rows", "op": "gt", "right": 0, "scales": "all"},
    {"kind": "cmp", "label": "higher update rates stage more rows",
     "left": {"col": "Staged rows", "where": {"Arcs/batch": RATES[-1]}},
     "op": "gt",
     "right": {"col": "Staged rows", "where": {"Arcs/batch": RATES[0]}},
     "scales": "all"},
    {"kind": "cmp", "label": "higher update rates cost more ingest bytes",
     "left": {"col": "Ingest bytes", "where": {"Arcs/batch": RATES[-1]}},
     "op": "gt",
     "right": {"col": "Ingest bytes", "where": {"Arcs/batch": RATES[0]}},
     "scales": "all"},
]


def test_streaming_incremental_vs_recompute(benchmark):
    scale = bench_scale()
    graph = get_graph("products")
    sources = [int(s) for s in
               np.linspace(0, graph.n_nodes - 1, N_PUBLISH).astype(int)]

    def run_all():
        return [run_rate(graph, sources, rate) for rate in RATES]

    rows, wall = common.timed(benchmark, run_all)
    common.publish(
        "streaming",
        "Incremental PPR maintenance vs recompute on ogbn-products "
        f"({N_MACHINES} machines, {N_PUBLISH} published sources, "
        f"{N_BATCHES} update batches)",
        rows, key=("Arcs/batch",),
        deterministic=("Staged rows", "Inc. corrections", "Inc. pushes",
                       "Recompute pushes"),
        higher_is_better=("Push ratio",),
        lower_is_better=("Inc. pushes", "Ingest bytes"),
        expectations=EXPECTATIONS, wall_s=wall,
        virtual_cols=("Clock (s)",),
    )
    for row in rows:
        benchmark.extra_info[row["Arcs/batch"]] = (
            f"inc={row['Inc. pushes']} full={row['Recompute pushes']}"
        )
