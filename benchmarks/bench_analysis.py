"""Static-analysis cost and rule yield (docs/static-analysis.md).

Builds the whole-program model once per analyzed tree, then times each
REP rule's check pass over two corpora: the shipped `src/repro` tree
(which must be clean under every rule — the tier-1 gate this bench
re-asserts as a deterministic column) and the per-rule fixture corpus
under `tests/fixtures/analysis/` (where every rule must fire — the
gate's non-vacuity check).  The `ALL` row is the end-to-end analyze
cost: project build plus all ten rules, the same work
`python -m repro.cli analyze` does.

Per-rule and end-to-end wall times are reported but not gated (host-
measured); finding counts are deterministic and gated exactly by
`cli bench check`.
"""

import time
from pathlib import Path

from benchmarks import common
from repro.analysis import build_project, load_config, run_lint
from repro.analysis.rules import ALL_RULES, get_rules

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"


def rule_row(rule_id, *, tree_project, fixture_project, config) -> dict:
    rules = get_rules([rule_id])
    t0 = time.perf_counter()
    tree = run_lint([SRC], rules=rules, config=config, root=REPO_ROOT,
                    project=tree_project)
    ms = (time.perf_counter() - t0) * 1e3
    fixture = run_lint([FIXTURES], rules=rules, root=REPO_ROOT,
                       project=fixture_project)
    return {
        "Rule": rule_id,
        "Tree findings": len(tree),
        "Fixture findings": len(fixture),
        "Check (ms)": round(ms, 2),
        "Tree clean": not tree,
        "Fires on fixtures": bool(fixture),
    }


EXPECTATIONS = [
    {"kind": "all_true",
     "label": "the shipped tree is clean under every rule",
     "col": "Tree clean", "scales": "all"},
    {"kind": "all_true",
     "label": "every rule fires somewhere in its fixture corpus "
              "(the gate is not vacuous)",
     "col": "Fires on fixtures", "scales": "all"},
]


def test_analysis_gate(benchmark):
    config = load_config(REPO_ROOT / "pyproject.toml")

    def run_all():
        t0 = time.perf_counter()
        tree_project = build_project([SRC], root=REPO_ROOT)
        build_ms = (time.perf_counter() - t0) * 1e3
        fixture_project = build_project([FIXTURES], root=REPO_ROOT)
        rows = [rule_row(r.id, tree_project=tree_project,
                         fixture_project=fixture_project, config=config)
                for r in ALL_RULES]
        t0 = time.perf_counter()
        everything = run_lint([SRC], config=config, root=REPO_ROOT)
        rows.append({
            "Rule": "ALL",
            "Tree findings": len(everything),
            "Fixture findings": sum(r["Fixture findings"] for r in rows),
            "Check (ms)": round((time.perf_counter() - t0) * 1e3
                                + build_ms, 2),
            "Tree clean": not everything,
            "Fires on fixtures": all(r["Fires on fixtures"] for r in rows),
        })
        stats = {
            "functions": len(tree_project.functions),
            "handlers": len(tree_project.rpc_handlers),
            "rpc_sites": len(tree_project.rpc_call_sites),
            "lock_sites": sum(len(f.locks)
                              for f in tree_project.functions.values()),
            "build_ms": round(build_ms, 2),
        }
        return rows, stats

    (rows, stats), wall = common.timed(benchmark, run_all)
    common.publish(
        "analysis",
        "Static-analysis gate: per-rule cost, tree cleanliness, fixture "
        "yield (REP001–REP010, whole-program model)",
        rows, key=("Rule",),
        deterministic=("Tree findings", "Fixture findings", "Tree clean",
                       "Fires on fixtures"),
        lower_is_better=("Check (ms)",),
        expectations=EXPECTATIONS, wall_s=wall,
        extra=stats,
    )
    benchmark.extra_info["model"] = (
        f"functions={stats['functions']} lock_sites={stats['lock_sites']} "
        f"handlers={stats['handlers']} build_ms={stats['build_ms']}"
    )
