"""Ablation — push-count overhead of parallel vs sequential Forward Push.

Section 3.2.3: "Although the parallel version requires slightly more
'pushes' than the sequential version, the parallel Forward Push is
naturally suitable for request batching".  This bench measures exactly that
trade: total pushes and iteration counts for both schedules, confirming the
overhead is a modest constant factor while the iteration count (the number
of communication rounds a distributed run needs) collapses.
"""

import numpy as np

from benchmarks.common import (
    assert_shapes,
    bench_scale,
    get_graph,
    print_and_store,
)
from repro.ppr import PPRParams, forward_push_parallel, forward_push_sequential

DATASETS = ("products", "friendster")
PARAMS = PPRParams(epsilon=1e-5)
N_SOURCES = 3


def run_dataset(name: str) -> dict:
    graph = get_graph(name)
    rng = np.random.default_rng(43)
    sources = rng.choice(np.flatnonzero(graph.out_degree() > 0),
                         size=N_SOURCES, replace=False)
    seq_pushes = par_pushes = 0
    seq_rounds = par_rounds = 0
    for s in sources:
        _, _, seq = forward_push_sequential(graph, int(s), PARAMS)
        _, _, par = forward_push_parallel(graph, int(s), PARAMS)
        seq_pushes += seq.n_pushes
        par_pushes += par.n_pushes
        seq_rounds += seq.n_iterations   # one vertex per round
        par_rounds += par.n_iterations   # one frontier per round
    return {
        "Dataset": name,
        "Seq pushes": seq_pushes,
        "Par pushes": par_pushes,
        "Push overhead": round(par_pushes / seq_pushes, 3),
        "Seq rounds": seq_rounds,
        "Par rounds": par_rounds,
        "Round reduction": round(seq_rounds / max(par_rounds, 1)),
    }


def test_push_counts(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_dataset(name) for name in DATASETS],
        rounds=1, iterations=1,
    )
    print_and_store(
        "push_counts",
        "Parallel vs sequential Forward Push: pushes and rounds",
        rows,
    )
    for row in rows:
        benchmark.extra_info[row["Dataset"]] = (
            f"overhead={row['Push overhead']} "
            f"rounds {row['Seq rounds']} -> {row['Par rounds']}"
        )
    if assert_shapes():
        for row in rows:
            # "slightly more pushes": bounded overhead
            assert 1.0 <= row["Push overhead"] < 3.0, row
            # communication rounds collapse by orders of magnitude
            assert row["Round reduction"] > 10, row
