"""Ablation — push-count overhead of parallel vs sequential Forward Push.

Section 3.2.3: "Although the parallel version requires slightly more
'pushes' than the sequential version, the parallel Forward Push is
naturally suitable for request batching".  This bench measures exactly that
trade: total pushes and iteration counts for both schedules, confirming the
overhead is a modest constant factor while the iteration count (the number
of communication rounds a distributed run needs) collapses.
"""

import numpy as np

from benchmarks import common
from benchmarks.common import get_graph
from repro.ppr import PPRParams, forward_push_parallel, forward_push_sequential

DATASETS = ("products", "friendster")
PARAMS = PPRParams(epsilon=1e-5)
N_SOURCES = 3


def run_dataset(name: str) -> dict:
    graph = get_graph(name)
    rng = np.random.default_rng(43)
    sources = rng.choice(np.flatnonzero(graph.out_degree() > 0),
                         size=N_SOURCES, replace=False)
    seq_pushes = par_pushes = 0
    seq_rounds = par_rounds = 0
    for s in sources:
        _, _, seq = forward_push_sequential(graph, int(s), PARAMS)
        _, _, par = forward_push_parallel(graph, int(s), PARAMS)
        seq_pushes += seq.n_pushes
        par_pushes += par.n_pushes
        seq_rounds += seq.n_iterations   # one vertex per round
        par_rounds += par.n_iterations   # one frontier per round
    return {
        "Dataset": name,
        "Seq pushes": seq_pushes,
        "Par pushes": par_pushes,
        "Push overhead": round(par_pushes / seq_pushes, 3),
        "Seq rounds": seq_rounds,
        "Par rounds": par_rounds,
        "Round reduction": round(seq_rounds / max(par_rounds, 1)),
    }


# "slightly more pushes": bounded overhead, while communication rounds
# collapse by orders of magnitude — all counters, hence deterministic;
# the magnitude claims assume full-size graphs
EXPECTATIONS = [
    {"kind": "bounds", "label": "parallel push overhead bounded",
     "col": "Push overhead", "lo": 1.0, "hi": 3.0, "scales": ["full"]},
    {"kind": "per_row", "label": "communication rounds collapse",
     "left_col": "Round reduction", "op": "gt", "right": 10,
     "scales": ["full"]},
]


def test_push_counts(benchmark):
    rows, wall = common.timed(
        benchmark, lambda: [run_dataset(name) for name in DATASETS]
    )
    common.publish(
        "push_counts",
        "Parallel vs sequential Forward Push: pushes and rounds",
        rows, key=("Dataset",),
        deterministic=("Seq pushes", "Par pushes", "Push overhead",
                       "Seq rounds", "Par rounds", "Round reduction"),
        expectations=EXPECTATIONS, wall_s=wall,
    )
    for row in rows:
        benchmark.extra_info[row["Dataset"]] = (
            f"overhead={row['Push overhead']} "
            f"rounds {row['Seq rounds']} -> {row['Par rounds']}"
        )
