"""Table 3 — ablation of the RPC optimizations on Friendster.

Paper setup: cumulative optimization levels on the Friendster graph, with a
phase breakdown per level.  Paper results (seconds; 2-machine run):

    level      Local Fetch  Remote Fetch  Push   Total  Speedup
    Single     0.38         6.59          0.87   7.85   --
    +Batch     0.16         0.80          0.15   1.11   7.1x
    +Compress  0.03         0.13          0.15   0.30   26.2x
    +Overlap   0.04         0.22          0.15   0.22   35.7x

Shape expectations: batching gives the largest step (per-request overhead
amortized), compression cuts both fetch phases hard (per-tensor wrap cost),
overlap reduces *total* below the sum of its phases (remote waits hide
behind local work — remote-fetch seconds can even rise while total falls,
exactly as in the paper's +Overlap row).
"""

from benchmarks import common
from benchmarks.common import bench_scale, engine_config, get_sharded
from repro.engine import GraphEngine, RunRequest
from repro.engine.query import sample_sources
from repro.ppr import OptLevel, PPRParams

#: Single mode issues one RPC per activated vertex; keep its workload sane.
ABLATION_PARAMS = PPRParams(alpha=0.462, epsilon=1e-5)
N_MACHINES = 2


def run_level(engine, sources, opt: OptLevel) -> tuple[dict, dict]:
    engine.config.opt = opt
    run = engine.run(RunRequest(sources=sources, params=ABLATION_PARAMS))
    row = {
        "Level": opt.value,
        "Local Fetch (s)": round(run.phases["local_fetch"], 4),
        "Remote Fetch (s)": round(run.phases["remote_fetch"], 4),
        "Push (s)": round(run.phases["push"], 4),
        "Total (s)": round(run.makespan, 4),
        "RPCs": run.remote_requests,
        "_makespan": run.makespan,
    }
    return row, run.metrics


# Batching reduces both RPC count and total time (min-cut partitioning
# keeps remote activations rare, so the per-vertex count is modest even
# unbatched; the time ratio is the big win).  Compression's robust
# signatures: the zero-copy local path slashes local fetch by an order of
# magnitude, and the total improves.  (The remote-fetch column mixes
# modeled transfer with *measured* handler time, so run-to-run compute
# noise can wash out its per-tensor savings at bench scale — not
# asserted.)  Overlap improves (or at least does not hurt) the total.
# RPC counts are deterministic, so the batching count claim holds at
# every scale; the time ratios only separate cleanly at full scale.
EXPECTATIONS = [
    {"kind": "cmp", "label": "batching cuts RPC count >2x",
     "left": {"col": "RPCs", "where": {"Level": "batch"}}, "op": "lt",
     "right": {"col": "RPCs", "where": {"Level": "single"}},
     "factor": 0.5, "scales": "all"},
    {"kind": "cmp", "label": "batching cuts total >2x",
     "left": {"col": "Total (s)", "where": {"Level": "batch"}}, "op": "lt",
     "right": {"col": "Total (s)", "where": {"Level": "single"}},
     "factor": 0.5, "scales": ["full"]},
    {"kind": "cmp", "label": "compression slashes local fetch",
     "left": {"col": "Local Fetch (s)", "where": {"Level": "compress"}},
     "op": "lt",
     "right": {"col": "Local Fetch (s)", "where": {"Level": "batch"}},
     "factor": 0.2, "scales": ["full"]},
    {"kind": "cmp", "label": "compression does not hurt total",
     "left": {"col": "Total (s)", "where": {"Level": "compress"}},
     "op": "le", "right": {"col": "Total (s)", "where": {"Level": "batch"}},
     "factor": 1.05, "scales": ["full"]},
    {"kind": "cmp", "label": "overlap does not hurt total",
     "left": {"col": "Total (s)", "where": {"Level": "overlap"}},
     "op": "le",
     "right": {"col": "Total (s)", "where": {"Level": "compress"}},
     "factor": 1.1, "scales": ["full"]},
]


def test_table3_rpc_ablation(benchmark):
    scale = bench_scale()
    sharded = get_sharded("friendster", N_MACHINES)
    # the adaptive fetch layer would rewrite the RPC pattern this table
    # ablates; pin it off so the level rows keep the paper's meaning
    # (bench_fetch_layer.py owns the fetch-layer ablation)
    engine = GraphEngine(sharded.graph,
                         engine_config(N_MACHINES, fetch_split=False,
                                       fetch_cache_bytes=0,
                                       fetch_coalesce=False),
                         sharded=sharded)
    sources = sample_sources(sharded, scale.queries_small, seed=13)
    metrics: dict = {}

    def run_all():
        rows = []
        for opt in (OptLevel.SINGLE, OptLevel.BATCH, OptLevel.COMPRESS,
                    OptLevel.OVERLAP):
            row, run_metrics = run_level(engine, sources, opt)
            rows.append(row)
            metrics.update(run_metrics)
        base = rows[0]["_makespan"]
        for row in rows:
            row["Speedup"] = round(base / row.pop("_makespan"), 1)
        return rows

    rows, wall = common.timed(benchmark, run_all)
    common.publish(
        "table3",
        "Table 3: RPC optimization ablation on Friendster "
        f"({N_MACHINES} machines, eps={ABLATION_PARAMS.epsilon:g})",
        rows, key=("Level",),
        deterministic=("RPCs",),
        lower_is_better=("Local Fetch (s)", "Remote Fetch (s)", "Push (s)",
                         "Total (s)"),
        higher_is_better=("Speedup",),
        expectations=EXPECTATIONS, metrics=metrics,
        wall_s=wall, virtual_cols=("Total (s)",),
    )
    for row in rows:
        benchmark.extra_info[row["Level"]] = (
            f"total={row['Total (s)']} speedup={row['Speedup']}x"
        )
