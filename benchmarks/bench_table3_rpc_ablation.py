"""Table 3 — ablation of the RPC optimizations on Friendster.

Paper setup: cumulative optimization levels on the Friendster graph, with a
phase breakdown per level.  Paper results (seconds; 2-machine run):

    level      Local Fetch  Remote Fetch  Push   Total  Speedup
    Single     0.38         6.59          0.87   7.85   --
    +Batch     0.16         0.80          0.15   1.11   7.1x
    +Compress  0.03         0.13          0.15   0.30   26.2x
    +Overlap   0.04         0.22          0.15   0.22   35.7x

Shape expectations: batching gives the largest step (per-request overhead
amortized), compression cuts both fetch phases hard (per-tensor wrap cost),
overlap reduces *total* below the sum of its phases (remote waits hide
behind local work — remote-fetch seconds can even rise while total falls,
exactly as in the paper's +Overlap row).
"""

from benchmarks.common import (
    assert_shapes,
    bench_scale,
    engine_config,
    get_sharded,
    print_and_store,
)
from repro.engine import GraphEngine
from repro.engine.query import sample_sources
from repro.ppr import OptLevel, PPRParams

#: Single mode issues one RPC per activated vertex; keep its workload sane.
ABLATION_PARAMS = PPRParams(alpha=0.462, epsilon=1e-5)
N_MACHINES = 2


def run_level(engine, sources, opt: OptLevel) -> dict:
    engine.config.opt = opt
    run = engine.run_queries(sources=sources, params=ABLATION_PARAMS)
    return {
        "Level": opt.value,
        "Local Fetch (s)": round(run.phases["local_fetch"], 4),
        "Remote Fetch (s)": round(run.phases["remote_fetch"], 4),
        "Push (s)": round(run.phases["push"], 4),
        "Total (s)": round(run.makespan, 4),
        "RPCs": run.remote_requests,
        "_makespan": run.makespan,
    }


def test_table3_rpc_ablation(benchmark):
    scale = bench_scale()
    sharded = get_sharded("friendster", N_MACHINES)
    engine = GraphEngine(sharded.graph, engine_config(N_MACHINES),
                         sharded=sharded)
    sources = sample_sources(sharded, scale.queries_small, seed=13)

    def run_all():
        rows = []
        for opt in (OptLevel.SINGLE, OptLevel.BATCH, OptLevel.COMPRESS,
                    OptLevel.OVERLAP):
            rows.append(run_level(engine, sources, opt))
        base = rows[0]["_makespan"]
        for row in rows:
            row["Speedup"] = f"{base / row.pop('_makespan'):.1f}x"
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_and_store(
        "table3",
        "Table 3: RPC optimization ablation on Friendster "
        f"({N_MACHINES} machines, eps={ABLATION_PARAMS.epsilon:g})",
        rows,
    )
    for row in rows:
        benchmark.extra_info[row["Level"]] = (
            f"total={row['Total (s)']} speedup={row['Speedup']}"
        )
    by = {r["Level"]: r for r in rows}
    if assert_shapes():
        # Batching reduces both RPC count and total time.  (Min-cut
        # partitioning keeps remote activations rare, so the per-vertex
        # count is modest even unbatched; the time ratio is the big win.)
        assert by["batch"]["RPCs"] < 0.5 * by["single"]["RPCs"]
        assert by["batch"]["Total (s)"] < 0.5 * by["single"]["Total (s)"]
        # Compression's robust signatures: the zero-copy local path slashes
        # local fetch by an order of magnitude, and the total improves.
        # (The remote-fetch column mixes modeled transfer with *measured*
        # handler time, so run-to-run compute noise can wash out its
        # per-tensor savings at bench scale — not asserted.)
        assert (by["compress"]["Local Fetch (s)"]
                < 0.2 * by["batch"]["Local Fetch (s)"])
        assert by["compress"]["Total (s)"] <= 1.05 * by["batch"]["Total (s)"]
        # Overlap improves (or at least does not hurt) the total.
        assert by["overlap"]["Total (s)"] <= 1.1 * by["compress"]["Total (s)"]
