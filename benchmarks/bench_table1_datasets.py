"""Table 1 — dataset statistics.

Regenerates the paper's dataset table for the synthetic stand-ins: |V|,
|E|, average degree, max degree.  Paper values (for the originals):

    Ogbn-products      2.5M   120M   50.5   17,481
    Twitter           41.7M   2.4B   57.7   2,997,487
    Friendster        65.6M   3.6B   57.8   5,214
    Ogbn-papers100M    111M   3.2B   29.1   251,471

The stand-ins are ~1000x smaller with matched average degree and the same
hub-extremity ordering (Twitter >> Papers > Products > Friendster by
d_max/d_avg); see ``repro.graph.datasets`` for the calibration rationale.
"""

from benchmarks import common
from benchmarks.common import DATASET_NAMES, get_graph
from repro.graph.stats import compute_stats

#: the stand-ins preserve the paper's orderings at *every* scale: graph
#: generation is seeded, so all of Table 1 is deterministic
EXPECTATIONS = [
    {"kind": "monotone", "label": "|V| ordering", "col": "|V|",
     "direction": "increasing", "scales": "all"},
    # degree calibration tracks the paper only near the stand-in sizes —
    # at tiny scale the generators' floors distort average degree
    {"kind": "cmp", "label": "papers has the lowest avg degree",
     "left": {"col": "d_avg", "where": {"Name": "papers"}},
     "op": "le", "right": {"col": "d_avg", "agg": "min"},
     "scales": ["full"]},
    {"kind": "cmp", "label": "twitter hub skew > products",
     "left": {"col": "dmax/davg", "where": {"Name": "twitter"}},
     "op": "gt", "right": {"col": "dmax/davg", "where": {"Name": "products"}},
     "scales": "all"},
    {"kind": "cmp", "label": "products hub skew > friendster",
     "left": {"col": "dmax/davg", "where": {"Name": "products"}},
     "op": "gt",
     "right": {"col": "dmax/davg", "where": {"Name": "friendster"}},
     "scales": "all"},
]


def _build_rows():
    rows = []
    for name in DATASET_NAMES:
        stats = compute_stats(name, get_graph(name))
        row = stats.as_row()
        row["dmax/davg"] = round(stats.max_degree / max(stats.avg_degree, 1e-9))
        rows.append(row)
    return rows


def test_table1_dataset_stats(benchmark):
    rows, wall = common.timed(benchmark, _build_rows)
    common.publish(
        "table1", "Table 1: dataset stand-in statistics", rows,
        key=("Name",),
        deterministic=("|V|", "|E|", "d_avg", "d_max", "dmax/davg"),
        expectations=EXPECTATIONS, wall_s=wall,
    )
    for row in rows:
        benchmark.extra_info[row["Name"]] = (
            f"|V|={row['|V|']} |E|={row['|E|']} d_avg={row['d_avg']}"
        )
