"""Table 1 — dataset statistics.

Regenerates the paper's dataset table for the synthetic stand-ins: |V|,
|E|, average degree, max degree.  Paper values (for the originals):

    Ogbn-products      2.5M   120M   50.5   17,481
    Twitter           41.7M   2.4B   57.7   2,997,487
    Friendster        65.6M   3.6B   57.8   5,214
    Ogbn-papers100M    111M   3.2B   29.1   251,471

The stand-ins are ~1000x smaller with matched average degree and the same
hub-extremity ordering (Twitter >> Papers > Products > Friendster by
d_max/d_avg); see ``repro.graph.datasets`` for the calibration rationale.
"""

from benchmarks.common import DATASET_NAMES, get_graph, print_and_store
from repro.graph.stats import compute_stats


def _build_rows():
    rows = []
    for name in DATASET_NAMES:
        stats = compute_stats(name, get_graph(name))
        row = stats.as_row()
        row["dmax/davg"] = round(stats.max_degree / max(stats.avg_degree, 1e-9))
        rows.append(row)
    return rows


def test_table1_dataset_stats(benchmark):
    rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)
    print_and_store("table1", "Table 1: dataset stand-in statistics", rows)
    for row in rows:
        benchmark.extra_info[row["Name"]] = (
            f"|V|={row['|V|']} |E|={row['|E|']} d_avg={row['d_avg']}"
        )
    # structural assertions: the stand-ins preserve the paper's orderings
    by_name = {r["Name"]: r for r in rows}
    assert by_name["products"]["|V|"] < by_name["twitter"]["|V|"] \
        < by_name["friendster"]["|V|"] < by_name["papers"]["|V|"]
    assert by_name["papers"]["d_avg"] == min(r["d_avg"] for r in rows)
    skew = {n: by_name[n]["dmax/davg"] for n in by_name}
    assert skew["twitter"] > skew["products"] > skew["friendster"]
