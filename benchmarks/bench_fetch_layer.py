"""Ablation of the adaptive neighbor-fetch layer (docs/fetch-layer.md).

Cumulative levels on a 2-hop-halo deployment with two worker processes
per machine (so coalescing has concurrent flights to dedup):

    off        fetch layer bypassed — the pre-layer RPC pattern
    +split     partial halo-cache hits: only uncovered rows cross the wire
    +cache     byte-budgeted hot-vertex cache absorbs repeated hub fetches
    +coalesce  overlapping in-flight requests share one response

Every level answers bit-for-bit identically (asserted by the tier-1
differential tests); what changes is how many bytes travel.  Response
bytes must fall at every step, remote request counts must never rise,
and the full layer must beat the bypassed engine on virtual throughput.

Determinism note: with two procs per machine, hot-cache and coalescing
counters depend on how the procs' virtual timelines interleave, and
those timelines incorporate *measured* handler time — so only the
split classification is exactly reproducible ("Halo hits": halo-covered
rows never enter the hot cache or the pending table, and each driver's
request content is interleaving-independent).  Everything else is gated
by inequality expectations with comfortable margins, not exact replay.
"""

from benchmarks import common
from benchmarks.common import bench_scale, engine_config, get_sharded
from repro.engine import GraphEngine, RunRequest
from repro.engine.query import sample_sources
from repro.ppr import OptLevel, PPRParams
from repro.storage import build_shards

PARAMS = PPRParams(alpha=0.462, epsilon=1e-5)
N_MACHINES = 2
PROCS = 2

#: cumulative (label, fetch_split, fetch_cache_bytes, fetch_coalesce)
LEVELS = (
    ("off", False, 0, False),
    ("+split", True, 0, False),
    ("+cache", True, 1 << 22, False),
    ("+coalesce", True, 1 << 22, True),
)


def run_level(engine, sources, level) -> dict:
    label, split, cache_bytes, coalesce = level
    run = engine.run(RunRequest(
        sources=sources, params=PARAMS, opt=OptLevel.OVERLAP,
        fetch_split=split, fetch_cache_bytes=cache_bytes,
        fetch_coalesce=coalesce,
    ))
    m = run.metrics
    return {
        "Level": label,
        "q/s": round(run.throughput, 1),
        "Total (s)": round(run.makespan, 4),
        "Remote RPCs": run.remote_requests,
        "Response bytes": int(m.get("rpc.response_bytes", 0)),
        "Hot hits": int(m.get("fetch.cache_hits", 0)),
        "Halo hits": int(m.get("fetch.halo_hits", 0)),
        "Coalesced": int(m.get("fetch.coalesced", 0)),
        "Bytes saved": int(m.get("fetch.bytes_saved", 0)),
    }


EXPECTATIONS = [
    {"kind": "cmp", "label": "splitting cuts bytes on the wire",
     "left": {"col": "Response bytes", "where": {"Level": "+split"}},
     "op": "lt",
     "right": {"col": "Response bytes", "where": {"Level": "off"}},
     "scales": "all"},
    {"kind": "cmp", "label": "hot cache cuts bytes further",
     "left": {"col": "Response bytes", "where": {"Level": "+cache"}},
     "op": "lt",
     "right": {"col": "Response bytes", "where": {"Level": "+split"}},
     "scales": "all"},
    {"kind": "cmp", "label": "coalescing cuts bytes further still",
     "left": {"col": "Response bytes", "where": {"Level": "+coalesce"}},
     "op": "lt",
     "right": {"col": "Response bytes", "where": {"Level": "+cache"}},
     "scales": "all"},
    {"kind": "cmp", "label": "hot cache cuts remote request count",
     "left": {"col": "Remote RPCs", "where": {"Level": "+cache"}},
     "op": "lt",
     "right": {"col": "Remote RPCs", "where": {"Level": "off"}},
     "scales": "all"},
    {"kind": "cmp", "label": "full layer cuts remote request count",
     "left": {"col": "Remote RPCs", "where": {"Level": "+coalesce"}},
     "op": "lt",
     "right": {"col": "Remote RPCs", "where": {"Level": "off"}},
     "scales": "all"},
    {"kind": "per_row", "label": "the layer reports saved bytes",
     "left_col": "Bytes saved", "op": "gt", "right": 0,
     "scales": "all", "where": {"Level": "+coalesce"}},
    {"kind": "cmp", "label": "full layer beats the bypassed engine",
     "left": {"col": "q/s", "where": {"Level": "+coalesce"}},
     "op": "gt",
     "right": {"col": "q/s", "where": {"Level": "off"}},
     "scales": ["full"]},
]


def test_fetch_layer_ablation(benchmark):
    scale = bench_scale()
    base = get_sharded("products", N_MACHINES)
    sharded = build_shards(base.graph, base.result, seed=0, halo_hops=2)
    engine = GraphEngine(
        sharded.graph,
        engine_config(N_MACHINES, procs=PROCS, halo_hops=2),
        sharded=sharded,
    )
    sources = sample_sources(sharded, scale.queries, seed=29)

    def run_all():
        return [run_level(engine, sources, level) for level in LEVELS]

    rows, wall = common.timed(benchmark, run_all)
    common.publish(
        "fetch_layer",
        "Adaptive fetch-layer ablation on ogbn-products "
        f"({N_MACHINES} machines x {PROCS} procs, 2-hop halo)",
        rows, key=("Level",),
        deterministic=("Halo hits",),
        higher_is_better=("q/s",),
        lower_is_better=("Total (s)", "Response bytes"),
        expectations=EXPECTATIONS, wall_s=wall,
        virtual_cols=("Total (s)",),
    )
    for row in rows:
        benchmark.extra_info[row["Level"]] = (
            f"bytes={row['Response bytes']} rpcs={row['Remote RPCs']}"
        )
