"""Section 4.5 case study — distributed GNN training with PPR sampling.

The paper demonstrates integration rather than a table: ShaDow-SAGE trained
with on-the-fly top-K SSPPR subgraphs, DistributedDataParallel gradient
sync, one replica per machine.  This bench runs the full Figure 7 pipeline
on a planted-community classification task and reports training throughput
plus the learning curve — asserting the end-to-end signal: the model learns
(loss falls, accuracy clears random), which requires every stage (PPR
sampling, convert_batch, feature store, all-reduce) to be wired correctly.
"""

from benchmarks import common
from benchmarks.common import bench_scale
from repro.engine import EngineConfig
from repro.gnn import community_task, run_distributed_training
from repro.graph import powerlaw_cluster
from repro.partition import MetisLitePartitioner

N_COMMUNITIES = 8


def run_case_study() -> dict:
    scale = bench_scale()
    n_nodes = {"tiny": 600, "small": 1500, "full": 4000}[scale.name]
    graph = powerlaw_cluster(n_nodes, 10, mixing=0.08,
                             n_communities=N_COMMUNITIES, seed=53)
    feats, labels = community_task(n_nodes, N_COMMUNITIES, 16, noise=0.4,
                                   seed=54)
    cfg = EngineConfig(n_machines=2,
                       partitioner=MetisLitePartitioner(seed=0))
    history = run_distributed_training(
        graph, feats, labels, cfg, n_steps=12, batch_size=8, topk=24,
        lr=2e-2, seed=55,
    )
    steps_total = history.steps * cfg.n_machines
    return {
        "Nodes": n_nodes,
        "Steps/replica": history.steps,
        "First loss": round(history.losses[0], 3),
        "Final loss": round(history.losses[-1], 3),
        "Final acc": round(history.final_accuracy(), 3),
        "Random acc": round(1 / N_COMMUNITIES, 3),
        "Train thpt (steps/s)": round(steps_total / history.makespan, 2),
        "_history": history,
    }


# the end-to-end learning signal: loss falls, accuracy clears random
EXPECTATIONS = [
    {"kind": "per_row", "label": "loss falls over training",
     "left_col": "Final loss", "op": "lt", "right_col": "First loss",
     "scales": ["full"]},
    {"kind": "per_row", "label": "accuracy clears 2x random",
     "left_col": "Final acc", "op": "gt", "right_col": "Random acc",
     "factor": 2.0, "scales": ["full"]},
]


def test_gnn_case_study(benchmark):
    row, wall = common.timed(benchmark, run_case_study)
    history = row.pop("_history")
    common.publish(
        "gnn_case_study",
        "Figure 7 case study: ShaDow-SAGE + PPR sampling (2 machines, DDP)",
        [row], key=("Nodes",),
        deterministic=("Steps/replica", "First loss", "Final loss",
                       "Final acc", "Random acc"),
        higher_is_better=("Train thpt (steps/s)",),
        expectations=EXPECTATIONS, wall_s=wall,
    )
    print("loss curve:", [round(x, 3) for x in history.losses])
    print("acc curve: ", [round(x, 3) for x in history.accuracies])
    benchmark.extra_info["final_acc"] = row["Final acc"]
    benchmark.extra_info["train_thpt"] = row["Train thpt (steps/s)"]
