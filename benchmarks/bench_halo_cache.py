"""Ablation — what the 1-hop halo cache saves.

Section 3.2.2: storing neighbors' weighted degrees inline ("halo caching")
lets the push operator threshold-check remotely-owned nodes without issuing
extra RPCs, "eliminating the need to aggregate edge weights on the fly".

Without the cache, *every remote node receiving residual mass* would need
its weighted degree fetched before the activation check — one extra remote
round-trip's worth of data per touched remote node per iteration.  This
bench counts those avoided lookups directly from engine counters and prices
them with the engine's own network model.
"""

import numpy as np

from benchmarks import common
from benchmarks.common import bench_scale, engine_config, get_sharded
from repro.engine import GraphEngine, RunRequest
from repro.engine.query import sample_sources
from repro.ppr import PPRParams
from repro.simt.network import NetworkModel

DATASETS = ("products", "twitter")
N_MACHINES = 4


def run_dataset(name: str) -> dict:
    scale_cfg = engine_config(N_MACHINES)
    sharded = get_sharded(name, N_MACHINES)
    engine = GraphEngine(sharded.graph, scale_cfg, sharded=sharded)
    from benchmarks.common import bench_scale as _bs
    sources = sample_sources(sharded, _bs().queries_small, seed=47)
    run = engine.run(RunRequest(sources=sources, params=PPRParams(),
                             keep_states=True))

    # Measured counterpart: the engine with halo_hops=2 actually serves
    # cached halo rows locally.
    from repro.storage import build_shards
    sharded2 = build_shards(sharded.graph, sharded.result, seed=0,
                            halo_hops=2)
    cfg2 = engine_config(N_MACHINES, halo_hops=2)
    engine2 = GraphEngine(sharded2.graph, cfg2, sharded=sharded2)
    run2 = engine2.run(RunRequest(sources=sources, params=PPRParams()))
    mem1 = sharded.total_memory_nbytes()
    mem2 = sharded2.total_memory_nbytes()

    # Count touched nodes that live on a different shard than the querying
    # machine: each would need a wdeg fetch per activation check without
    # the halo cache.
    extra_lookups = 0
    for gid, state in run.states.items():
        owner = sharded.owner_shard[gid]
        keys = state.map.keys()
        shard_of_key = keys % sharded.n_shards
        extra_lookups += int(np.count_nonzero(shard_of_key != owner))

    net = NetworkModel()
    # one batched wdeg-fetch round per iteration is the cheapest possible
    # no-cache protocol; price it per avoided remote entry (8B values)
    extra_seconds = extra_lookups * 8 / net.bandwidth \
        + sum(s.n_iterations for s in run.states.values()) \
        * (net.rpc_overhead * 2 + net.latency * 2)
    return {
        "Dataset": name,
        "Queries": len(run.states),
        "Avoided wdeg lookups": extra_lookups,
        "Modeled extra time (s)": round(extra_seconds, 4),
        "Uncached overhead (%)": round(100 * extra_seconds / run.makespan),
        "RPCs @1hop": run.remote_requests,
        "RPCs @2hop": run2.remote_requests,
        "Mem @1hop (MB)": round(mem1 / 1e6, 1),
        "Mem @2hop (MB)": round(mem2 / 1e6, 1),
    }


# the 1-hop metadata cache is load-bearing, and deepening to 2 hops
# trades memory for fewer RPCs, exactly the direction Section 3.2.1
# describes
EXPECTATIONS = [
    {"kind": "per_row", "label": "halo cache avoids many wdeg lookups",
     "left_col": "Avoided wdeg lookups", "op": "gt", "right": 100,
     "scales": ["full"]},
    {"kind": "per_row", "label": "modeled no-cache cost is positive",
     "left_col": "Modeled extra time (s)", "op": "gt", "right": 0,
     "scales": ["full"]},
    {"kind": "per_row", "label": "2-hop halo needs fewer RPCs",
     "left_col": "RPCs @2hop", "op": "le", "right_col": "RPCs @1hop",
     "scales": "all"},
    {"kind": "per_row", "label": "2-hop halo costs more memory",
     "left_col": "Mem @2hop (MB)", "op": "gt", "right_col": "Mem @1hop (MB)",
     "scales": "all"},
]


def test_halo_cache_savings(benchmark):
    rows, wall = common.timed(
        benchmark, lambda: [run_dataset(name) for name in DATASETS]
    )
    common.publish(
        "halo_cache",
        "Halo-cache ablation: remote wdeg lookups avoided by 1-hop caching",
        rows, key=("Dataset",),
        deterministic=("Queries", "Avoided wdeg lookups",
                       "Modeled extra time (s)", "RPCs @1hop", "RPCs @2hop",
                       "Mem @1hop (MB)", "Mem @2hop (MB)"),
        expectations=EXPECTATIONS, wall_s=wall,
    )
    for row in rows:
        benchmark.extra_info[row["Dataset"]] = (
            f"avoided={row['Avoided wdeg lookups']} "
            f"overhead=+{row['Uncached overhead (%)']}%"
        )
