"""Extension ablation — inter-query RPC batching (MultiSSPPR).

The paper batches RPCs within one query's iteration; this extension shares
each iteration's per-shard fetch across a whole batch of queries advanced
in lockstep (Section 3.1's production setting).  Measures throughput and
RPC counts for the sequential engine vs the multi-query engine on identical
query sets.
"""

import numpy as np

from benchmarks.common import (
    assert_shapes,
    bench_scale,
    engine_config,
    get_sharded,
    print_and_store,
)
from repro.engine import GraphEngine
from repro.engine.query import sample_sources
from repro.ppr import PPRParams

DATASETS = ("products", "twitter")
N_MACHINES = 4
PARAMS = PPRParams()


def run_dataset(name: str) -> dict:
    scale = bench_scale()
    sharded = get_sharded(name, N_MACHINES)
    engine = GraphEngine(sharded.graph, engine_config(N_MACHINES),
                         sharded=sharded)
    sources = sample_sources(sharded, scale.queries, seed=61)
    seq = engine.run_queries(sources=sources, params=PARAMS)
    bat = engine.run_queries_batched(sources=sources, params=PARAMS)
    return {
        "Dataset": name,
        "Queries": len(sources),
        "Seq (q/s)": round(seq.throughput, 1),
        "Batched (q/s)": round(bat.throughput, 1),
        "Speedup": f"{bat.throughput / seq.throughput:.2f}x",
        "Seq RPCs": seq.remote_requests,
        "Batched RPCs": bat.remote_requests,
        "RPC reduction": f"{seq.remote_requests / max(bat.remote_requests, 1):.1f}x",
    }


def test_multi_query_batching(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_dataset(name) for name in DATASETS],
        rounds=1, iterations=1,
    )
    print_and_store(
        "multi_query",
        "Inter-query batching: sequential vs lockstep MultiSSPPR",
        rows,
    )
    for row in rows:
        benchmark.extra_info[row["Dataset"]] = (
            f"speedup={row['Speedup']} rpc_reduction={row['RPC reduction']}"
        )
    if assert_shapes():
        for row in rows:
            assert row["Batched RPCs"] < row["Seq RPCs"], row
            assert row["Batched (q/s)"] > 0.8 * row["Seq (q/s)"], row
