"""Extension ablation — inter-query RPC batching (MultiSSPPR).

The paper batches RPCs within one query's iteration; this extension shares
each iteration's per-shard fetch across a whole batch of queries advanced
in lockstep (Section 3.1's production setting).  Measures throughput and
RPC counts for the sequential engine vs the multi-query engine on identical
query sets.
"""

import numpy as np

from benchmarks import common
from benchmarks.common import bench_scale, engine_config, get_sharded
from repro.engine import GraphEngine, RunRequest
from repro.engine.query import sample_sources
from repro.ppr import PPRParams

DATASETS = ("products", "twitter")
N_MACHINES = 4
PARAMS = PPRParams()


def run_dataset(name: str) -> dict:
    scale = bench_scale()
    sharded = get_sharded(name, N_MACHINES)
    engine = GraphEngine(sharded.graph, engine_config(N_MACHINES),
                         sharded=sharded)
    sources = sample_sources(sharded, scale.queries, seed=61)
    seq = engine.run(RunRequest(sources=sources, params=PARAMS))
    bat = engine.run_queries_batched(sources=sources, params=PARAMS)
    return {
        "Dataset": name,
        "Queries": len(sources),
        "Seq (q/s)": round(seq.throughput, 1),
        "Batched (q/s)": round(bat.throughput, 1),
        "Speedup": round(bat.throughput / seq.throughput, 2),
        "Seq RPCs": seq.remote_requests,
        "Batched RPCs": bat.remote_requests,
        "RPC reduction":
            round(seq.remote_requests / max(bat.remote_requests, 1), 1),
    }


# lockstep advancement shares per-shard fetches across the batch: the RPC
# count must fall (deterministic) without giving back the throughput win.
# At tiny scale a 4-query batch can already be fetch-minimal (counts tie),
# so sub-scale runs only require "never more".
EXPECTATIONS = [
    {"kind": "per_row", "label": "batching never adds RPCs",
     "left_col": "Batched RPCs", "op": "le", "right_col": "Seq RPCs",
     "scales": "all"},
    {"kind": "per_row", "label": "batching reduces RPC count",
     "left_col": "Batched RPCs", "op": "lt", "right_col": "Seq RPCs",
     "scales": ["full"]},
    {"kind": "per_row", "label": "batching keeps throughput",
     "left_col": "Batched (q/s)", "op": "gt", "right_col": "Seq (q/s)",
     "factor": 0.8, "scales": ["full"]},
]


def test_multi_query_batching(benchmark):
    rows, wall = common.timed(
        benchmark, lambda: [run_dataset(name) for name in DATASETS]
    )
    common.publish(
        "multi_query",
        "Inter-query batching: sequential vs lockstep MultiSSPPR",
        rows, key=("Dataset",),
        deterministic=("Queries", "Seq RPCs", "Batched RPCs",
                       "RPC reduction"),
        higher_is_better=("Seq (q/s)", "Batched (q/s)", "Speedup"),
        expectations=EXPECTATIONS, wall_s=wall,
    )
    for row in rows:
        benchmark.extra_info[row["Dataset"]] = (
            f"speedup={row['Speedup']}x rpc_reduction={row['RPC reduction']}x"
        )
