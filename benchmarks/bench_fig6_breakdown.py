"""Figure 6 — runtime breakdown: PyTorch Tensor vs PPR Engine.

Paper setup: both methods with batched RPCs and *no* overlap (so phases
separate cleanly); stacked bars of Local Fetch / Remote Fetch / Push per
dataset (the paper plots ratios and annotates absolute seconds; activated-
node retrieval is shown separately and dominates only for the tensor
method).

Shape expectations: for the PPR Engine, remote fetch and push are the same
order of magnitude and pop is negligible; for the tensor baseline, pop
(the |V|-length activation scan) takes a far larger share than the
engine's, and its push is slower than the engine's per the paper's 5-16x
HashMap-vs-tensor push comparison at paper scale.
"""

from benchmarks import common
from benchmarks.common import (
    DATASET_NAMES,
    bench_scale,
    engine_config,
    get_sharded,
)
from repro.engine import GraphEngine, RunRequest
from repro.engine.query import sample_sources
from repro.ppr import OptLevel, PPRParams

N_MACHINES = 4
PARAMS = PPRParams()


def run_dataset(name: str) -> list[dict]:
    scale = bench_scale()
    sharded = get_sharded(name, N_MACHINES)
    cfg = engine_config(N_MACHINES, opt=OptLevel.COMPRESS)  # no overlap
    engine = GraphEngine(sharded.graph, cfg, sharded=sharded)
    sources = sample_sources(sharded, scale.queries_small, seed=29)
    rows = []
    for impl, run in (
        ("PPR Engine", engine.run(RunRequest(sources=sources, params=PARAMS))),
        ("PyTorch Tensor",
         engine.run_tensor_queries(sources=sources, params=PARAMS)),
    ):
        total = sum(run.phases.values())
        rows.append({
            "Dataset": name,
            "Impl": impl,
            "Local Fetch": round(run.phases["local_fetch"], 4),
            "Remote Fetch": round(run.phases["remote_fetch"], 4),
            "Push": round(run.phases["push"], 4),
            "Pop (act. retrieval)": round(run.phases["pop"], 4),
            "Pop share": round(run.phases["pop"] / total, 3),
        })
    return rows


# Engine shape: pop negligible; remote fetch the same order of magnitude
# as push ("the Remote Fetch time is similar to the Push time for our PPR
# Engine").  Tensor shape: the |V|-proportional activation scan's *share*
# grows with graph size (it dominates outright only at paper scale; the
# crossover bench measures that trend directly).
EXPECTATIONS = [
    {"kind": "bounds", "label": "engine pop share negligible",
     "col": "Pop share", "where": {"Impl": "PPR Engine"}, "hi": 0.35,
     "scales": ["full"]},
    {"kind": "cmp", "label": "tensor pop share grows with |V|",
     "left": {"col": "Pop share",
              "where": {"Impl": "PyTorch Tensor", "Dataset": "papers"}},
     "op": "gt",
     "right": {"col": "Pop share",
               "where": {"Impl": "PyTorch Tensor", "Dataset": "products"}},
     "scales": ["full"]},
] + [
    exp for name in DATASET_NAMES for exp in (
        {"kind": "ratio", "label": f"{name}: engine RF/Push > 0.05",
         "left": [{"col": "Remote Fetch",
                   "where": {"Impl": "PPR Engine", "Dataset": name}},
                  {"col": "Push",
                   "where": {"Impl": "PPR Engine", "Dataset": name}}],
         "op": "gt", "right": 0.05, "scales": ["full"]},
        {"kind": "ratio", "label": f"{name}: engine RF/Push < 20",
         "left": [{"col": "Remote Fetch",
                   "where": {"Impl": "PPR Engine", "Dataset": name}},
                  {"col": "Push",
                   "where": {"Impl": "PPR Engine", "Dataset": name}}],
         "op": "lt", "right": 20.0, "scales": ["full"]},
    )
]


def test_fig6_breakdown(benchmark):
    rows, wall = common.timed(
        benchmark,
        lambda: [r for name in DATASET_NAMES for r in run_dataset(name)],
    )
    common.publish(
        "fig6",
        "Figure 6: runtime breakdown, batched + compressed, no overlap",
        rows, key=("Dataset", "Impl"),
        lower_is_better=("Local Fetch", "Remote Fetch", "Push",
                         "Pop (act. retrieval)"),
        expectations=EXPECTATIONS, wall_s=wall,
        virtual_cols=("Local Fetch", "Remote Fetch", "Push",
                      "Pop (act. retrieval)"),
    )
    for row in rows:
        benchmark.extra_info[f"{row['Dataset']}/{row['Impl']}"] = (
            f"lf={row['Local Fetch']} rf={row['Remote Fetch']} "
            f"push={row['Push']} pop={row['Pop (act. retrieval)']}"
        )
