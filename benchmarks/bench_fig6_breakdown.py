"""Figure 6 — runtime breakdown: PyTorch Tensor vs PPR Engine.

Paper setup: both methods with batched RPCs and *no* overlap (so phases
separate cleanly); stacked bars of Local Fetch / Remote Fetch / Push per
dataset (the paper plots ratios and annotates absolute seconds; activated-
node retrieval is shown separately and dominates only for the tensor
method).

Shape expectations: for the PPR Engine, remote fetch and push are the same
order of magnitude and pop is negligible; for the tensor baseline, pop
(the |V|-length activation scan) takes a far larger share than the
engine's, and its push is slower than the engine's per the paper's 5-16x
HashMap-vs-tensor push comparison at paper scale.
"""

from benchmarks.common import (
    DATASET_NAMES,
    assert_shapes,
    bench_scale,
    engine_config,
    get_sharded,
    print_and_store,
)
from repro.engine import GraphEngine
from repro.engine.query import sample_sources
from repro.ppr import OptLevel, PPRParams

N_MACHINES = 4
PARAMS = PPRParams()


def run_dataset(name: str) -> list[dict]:
    scale = bench_scale()
    sharded = get_sharded(name, N_MACHINES)
    cfg = engine_config(N_MACHINES, opt=OptLevel.COMPRESS)  # no overlap
    engine = GraphEngine(sharded.graph, cfg, sharded=sharded)
    sources = sample_sources(sharded, scale.queries_small, seed=29)
    rows = []
    for impl, run in (
        ("PPR Engine", engine.run_queries(sources=sources, params=PARAMS)),
        ("PyTorch Tensor",
         engine.run_tensor_queries(sources=sources, params=PARAMS)),
    ):
        total = sum(run.phases.values())
        rows.append({
            "Dataset": name,
            "Impl": impl,
            "Local Fetch": round(run.phases["local_fetch"], 4),
            "Remote Fetch": round(run.phases["remote_fetch"], 4),
            "Push": round(run.phases["push"], 4),
            "Pop (act. retrieval)": round(run.phases["pop"], 4),
            "Pop share": round(run.phases["pop"] / total, 3),
        })
    return rows


def test_fig6_breakdown(benchmark):
    rows = benchmark.pedantic(
        lambda: [r for name in DATASET_NAMES for r in run_dataset(name)],
        rounds=1, iterations=1,
    )
    print_and_store(
        "fig6",
        "Figure 6: runtime breakdown, batched + compressed, no overlap",
        rows,
    )
    for row in rows:
        benchmark.extra_info[f"{row['Dataset']}/{row['Impl']}"] = (
            f"lf={row['Local Fetch']} rf={row['Remote Fetch']} "
            f"push={row['Push']} pop={row['Pop (act. retrieval)']}"
        )
    if assert_shapes():
        for name in DATASET_NAMES:
            engine_row = next(r for r in rows if r["Dataset"] == name
                              and r["Impl"] == "PPR Engine")
            # Engine shape: pop negligible; remote fetch the same order of
            # magnitude as push ("the Remote Fetch time is similar to the
            # Push time for our PPR Engine").
            assert engine_row["Pop share"] < 0.35, name
            ratio = engine_row["Remote Fetch"] / max(engine_row["Push"], 1e-9)
            assert 0.05 < ratio < 20.0, (name, ratio)
        # Tensor shape: the |V|-proportional activation scan's *share*
        # grows with graph size (it dominates outright only at paper
        # scale; the crossover bench measures that trend directly).
        tensor_pop = {
            r["Dataset"]: r["Pop share"] for r in rows
            if r["Impl"] == "PyTorch Tensor"
        }
        assert tensor_pop["papers"] > tensor_pop["products"]
