"""RPC optimization walkthrough — Table 3 live, on a small graph.

Runs the same SSPPR batch at each cumulative optimization level
(Single -> +Batch -> +Compress -> +Overlap) and prints what changed and
*why*, tying each step to the mechanism in the network cost model:

* batching amortizes the fixed per-request RPC overhead;
* CSR compression replaces a list of per-node tensors (each paying the
  TensorPipe wrapping cost) with seven flat arrays, and switches local
  fetches to the zero-copy VertexProp path;
* overlap issues remote fetches before local work so waits hide.

Run:  python examples/rpc_ablation_demo.py
"""

from repro import EngineConfig, GraphEngine, OptLevel, PPRParams, RunRequest, load_dataset

EXPLANATIONS = {
    OptLevel.SINGLE: "one RPC per activated vertex, per-node tensor lists",
    OptLevel.BATCH: "one RPC per (iteration, destination shard)",
    OptLevel.COMPRESS: "CSR responses (7 tensors/batch) + zero-copy local",
    OptLevel.OVERLAP: "remote fetches issued before local fetch + push",
}


def main() -> None:
    graph = load_dataset("friendster", scale=0.05)
    print(f"friendster stand-in at 5%: {graph.n_nodes} nodes, "
          f"{graph.n_arcs // 2} edges; 2 machines\n")
    params = PPRParams(epsilon=1e-5)
    engine = GraphEngine(graph, EngineConfig(n_machines=2))
    sources = None
    baseline = None

    header = (f"{'level':<10} {'total(ms)':>10} {'speedup':>8} "
              f"{'RPCs':>6} {'local(ms)':>10} {'remote(ms)':>11} "
              f"{'push(ms)':>9}")
    print(header)
    print("-" * len(header))
    for opt in (OptLevel.SINGLE, OptLevel.BATCH, OptLevel.COMPRESS,
                OptLevel.OVERLAP):
        engine.config.opt = opt
        if sources is None:
            from repro.engine.query import sample_sources
            sources = sample_sources(engine.sharded, 4, seed=21)
        run = engine.run(RunRequest(sources=sources, params=params))
        if baseline is None:
            baseline = run.makespan
        print(f"{opt.value:<10} {run.makespan * 1e3:>10.2f} "
              f"{baseline / run.makespan:>7.1f}x {run.remote_requests:>6} "
              f"{run.phases['local_fetch'] * 1e3:>10.2f} "
              f"{run.phases['remote_fetch'] * 1e3:>11.2f} "
              f"{run.phases['push'] * 1e3:>9.2f}")
        print(f"{'':<10} ({EXPLANATIONS[opt]})")
    print("\ncompare with the paper's Table 3: 7.1x / 26.2x / 35.7x "
          "cumulative speedups on the full-size Friendster.")


if __name__ == "__main__":
    main()
