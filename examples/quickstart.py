"""Quickstart — partition a graph, deploy the engine, run SSPPR queries.

Covers the library's core loop in ~60 lines:

1. load a dataset stand-in (or bring your own ``CSRGraph``);
2. build a :class:`GraphEngine`: min-cut partition + shard deployment on a
   simulated 4-machine cluster;
3. run a batch of SSPPR queries and inspect throughput, the phase
   breakdown, and one query's top-10 PPR nodes;
4. cross-check a result against the single-machine reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import EngineConfig, GraphEngine, PPRParams, RunRequest, load_dataset
from repro.ppr import forward_push_parallel, topk_nodes


def main() -> None:
    print("loading ogbn-products stand-in (5% scale for a fast demo)...")
    graph = load_dataset("products", scale=0.05)
    print(f"graph: {graph.n_nodes} nodes, {graph.n_arcs // 2} edges")

    print("\npartitioning into 4 shards and deploying the engine...")
    engine = GraphEngine(graph, EngineConfig(n_machines=4,
                                             procs_per_machine=2))
    for desc in engine.sharded.describe():
        print(f"  shard {desc['shard_id']}: {desc['n_core']} core nodes, "
              f"{desc['n_halo']} halo nodes, {desc['memory_mb']:.1f} MB")

    params = PPRParams(alpha=0.462, epsilon=1e-6)
    print(f"\nrunning 16 SSPPR queries (alpha={params.alpha}, "
          f"eps={params.epsilon:g})...")
    run = engine.run(RunRequest(n_queries=16, params=params, keep_states=True))
    print(f"throughput: {run.throughput:.1f} queries/s (virtual time)")
    print(f"makespan:   {run.makespan * 1e3:.2f} ms across "
          f"{len(run.per_proc_clocks)} computing processes")
    print(f"RPC stats:  {run.remote_requests} remote requests, "
          f"{run.local_calls} zero-copy local calls")
    print("phase breakdown:",
          {k: f"{v * 1e3:.2f}ms" for k, v in run.phases.items()})

    gid, state = next(iter(run.states.items()))
    gids, values = state.results_global(engine.sharded)
    order = np.argsort(-values)[:10]
    print(f"\ntop-10 PPR nodes for source {gid} "
          f"({state.n_touched} nodes touched):")
    for rank, i in enumerate(order, 1):
        print(f"  {rank:2d}. node {gids[i]:>8d}  ppr={values[i]:.6f}")

    print("\ncross-checking against the single-machine reference...")
    dense = state.dense_result(engine.sharded, graph.n_nodes)
    ref, _, _ = forward_push_parallel(graph, gid, params)
    err = np.abs(dense - ref).sum()
    bound = 2 * params.epsilon * graph.weighted_degrees.sum()
    print(f"L1 difference: {err:.2e} (epsilon bound: {bound:.2e})")
    same_top10 = np.array_equal(topk_nodes(dense, 10), topk_nodes(ref, 10))
    print(f"top-10 sets identical: {same_top10}")
    assert err <= bound


if __name__ == "__main__":
    main()
