"""GNN training with Personalized PageRank — the paper's Figure 7 case study.

Trains a ShaDow-SAGE node classifier where every mini-batch subgraph is
built on the fly from top-K SSPPR scores computed by the PPR engine:

* one model replica per simulated machine (DistributedDataParallel style);
* ego nodes are drawn from each machine's own shard (owner-compute rule);
* features come from the cross-machine feature store;
* gradients are averaged with an all-reduce every step, keeping replicas
  synchronized.

The task is community classification on a planted-partition graph: PPR
neighborhoods concentrate inside communities, so the sampler feeds the
model exactly the right context and accuracy climbs quickly.

Run:  python examples/gnn_ppr_training.py
"""

from repro.engine import EngineConfig
from repro.gnn import community_task, run_distributed_training
from repro.graph import powerlaw_cluster
from repro.partition import MetisLitePartitioner

N_NODES = 3000
N_COMMUNITIES = 8
FEATURE_DIM = 16


def main() -> None:
    print(f"building a {N_NODES}-node graph with {N_COMMUNITIES} planted "
          "communities...")
    graph = powerlaw_cluster(N_NODES, 10, mixing=0.08,
                             n_communities=N_COMMUNITIES, seed=7)
    features, labels = community_task(N_NODES, N_COMMUNITIES, FEATURE_DIM,
                                      noise=0.4, seed=8)
    print(f"task: classify {N_COMMUNITIES} communities "
          f"(random baseline = {1 / N_COMMUNITIES:.3f} accuracy)")

    config = EngineConfig(n_machines=2,
                          partitioner=MetisLitePartitioner(seed=0))
    print("\ntraining ShaDow-SAGE on 2 machines, DDP gradient sync,"
          "\ntop-24 PPR subgraphs sampled on the fly per ego node...\n")
    history = run_distributed_training(
        graph, features, labels, config,
        n_steps=15, batch_size=8, topk=24, lr=2e-2, seed=9,
    )

    print(f"{'step':>4} {'loss':>8} {'acc':>6}")
    for i, (loss, acc) in enumerate(zip(history.losses,
                                        history.accuracies)):
        print(f"{i:>4} {loss:>8.4f} {acc:>6.3f}")
    print(f"\nfinal accuracy (last-5 mean): {history.final_accuracy():.3f}")
    print(f"virtual training time: {history.makespan:.2f}s for "
          f"{history.steps} steps x 2 replicas "
          f"({2 * history.steps / history.makespan:.1f} steps/s)")
    assert history.final_accuracy() > 2 / N_COMMUNITIES


if __name__ == "__main__":
    main()
