"""Scalability sweep — Figure 5 in miniature, plus the crossover story.

Three quick studies on one stand-in dataset:

1. machine scaling (Figure 5a): throughput and remote-traffic share as the
   cluster grows;
2. process scaling (Figure 5b): strong vs weak scaling of computing
   processes;
3. the engine-vs-tensor crossover: how the hashmap engine's advantage over
   the dense tensor baseline grows with graph size (the scale phenomenon
   behind the paper's 83-1085x headline numbers).

Run:  python examples/scalability_sweep.py
"""

import numpy as np

from repro import EngineConfig, GraphEngine, PPRParams, RunRequest, load_dataset
from repro.graph import powerlaw_cluster
from repro.partition import HashPartitioner, MetisLitePartitioner


def machine_scaling() -> None:
    print("=== machine scaling (Figure 5a) ===")
    graph = load_dataset("products", scale=0.2)
    for k in (2, 4, 8):
        cfg = EngineConfig(n_machines=k,
                           partitioner=MetisLitePartitioner(seed=0))
        engine = GraphEngine(graph, cfg)
        run = engine.run(RunRequest(n_queries=16, seed=3))
        share = run.remote_requests / max(
            run.remote_requests + run.local_calls, 1
        )
        print(f"  {k} machines: {run.throughput:>7.1f} q/s, "
              f"remote-call share {share:.0%}")


def process_scaling() -> None:
    print("\n=== process scaling (Figure 5b) ===")
    graph = load_dataset("products", scale=0.2)
    base = None
    for procs in (1, 2, 4, 8):
        cfg = EngineConfig(n_machines=2, procs_per_machine=procs,
                           partitioner=MetisLitePartitioner(seed=0))
        engine = GraphEngine(graph, cfg)
        strong = engine.run(RunRequest(n_queries=32, seed=5))
        weak = engine.run(RunRequest(n_queries=8 * procs * 2, seed=7))
        if base is None:
            base = (strong.throughput, weak.throughput)
        print(f"  {procs} procs/machine: strong {strong.throughput:>7.1f} q/s "
              f"({strong.throughput / base[0]:.1f}x), "
              f"weak {weak.throughput:>7.1f} q/s "
              f"({weak.throughput / base[1]:.1f}x)")


def crossover() -> None:
    print("\n=== engine vs tensor baseline: the scale effect ===")
    params = PPRParams()
    for n in (20_000, 80_000, 320_000):
        graph = powerlaw_cluster(n, 12, exponent=2.3, max_degree=500,
                                 mixing=0.1, seed=5)
        engine = GraphEngine(graph, EngineConfig(
            n_machines=4, partitioner=HashPartitioner()
        ))
        run_e = engine.run(RunRequest(n_queries=4, seed=7, params=params,
                                   keep_states=True))
        run_t = engine.run_tensor_queries(
            sources=np.array(sorted(run_e.states)), seed=7, params=params
        )
        print(f"  |V|={n:>7,}: engine {run_e.throughput:>7.1f} q/s, "
              f"tensor {run_t.throughput:>7.1f} q/s, "
              f"ratio {run_e.throughput / run_t.throughput:.2f}x")
    print("  (the ratio keeps widening with |V| — at the paper's "
          "2.5M-111M nodes it reaches 83-1085x)")


if __name__ == "__main__":
    machine_scaling()
    process_scaling()
    crossover()
