"""Beyond PPR — other graph algorithms on the same engine.

The paper positions its engine as general infrastructure: "our proposed PPR
engine can be easily extended to other graph processing algorithms".  This
example runs three of them on one deployed cluster:

1. distributed BFS (hop distances from a source),
2. node2vec second-order biased walks,
3. FORA hybrid SSPPR (coarse Forward Push + Monte-Carlo refinement),

and cross-checks each against a single-machine reference.

Run:  python examples/graph_algorithms.py
"""

import numpy as np

from repro import EngineConfig, load_dataset
from repro.engine.cluster import SimCluster
from repro.partition import MetisLitePartitioner
from repro.ppr import fora_ssppr, power_iteration_ssppr, topk_precision
from repro.storage import DistGraphStorage, build_shards
from repro.walk import (
    distributed_bfs,
    distributed_node2vec_walk,
    single_machine_bfs,
)


def main() -> None:
    graph = load_dataset("friendster", scale=0.02)
    n_machines = 3
    print(f"friendster stand-in: {graph.n_nodes} nodes, "
          f"{graph.n_arcs // 2} edges, {n_machines} machines\n")
    sharded = build_shards(
        graph, MetisLitePartitioner(seed=0).partition(graph, n_machines)
    )

    # --- distributed BFS -------------------------------------------------
    cluster = SimCluster(sharded, EngineConfig(n_machines=n_machines))
    name = "compute:0.0"
    g = DistGraphStorage(cluster.rrefs, 0, name)
    source = int(sharded.shards[0].core_global[0])
    source_local = int(sharded.owner_local[source])

    def bfs_driver():
        proc = cluster.scheduler.processes[name]
        state = yield from distributed_bfs(g, proc, source_local)
        return state

    cluster.spawn_compute(0, 0, bfs_driver())
    makespan = cluster.run()
    state = cluster.scheduler.result_of(name)
    depths = state.dense_depths(sharded, graph.n_nodes)
    reference = single_machine_bfs(graph, source)
    reached = int((depths >= 0).sum())
    print(f"BFS from node {source}: reached {reached} nodes, "
          f"eccentricity {depths.max()}, {makespan * 1e3:.2f} ms virtual")
    print(f"  matches single-machine reference: "
          f"{np.array_equal(depths, reference)}")
    hist = np.bincount(depths[depths >= 0])
    print("  nodes per hop:", hist.tolist()[:8], "...")

    # --- node2vec walks ----------------------------------------------------
    cluster2 = SimCluster(sharded, EngineConfig(n_machines=n_machines))
    g2 = DistGraphStorage(cluster2.rrefs, 0, name)
    roots = sharded.shards[0].core_global[:6]

    def n2v_driver():
        proc = cluster2.scheduler.processes[name]
        summary = yield from distributed_node2vec_walk(
            g2, proc, roots, sharded, 8, p=0.25, q=4.0, seed=5
        )
        return summary

    cluster2.spawn_compute(0, 0, n2v_driver())
    cluster2.run()
    walks = cluster2.scheduler.result_of(name)
    print(f"\nnode2vec walks (p=0.25, q=4.0 — homophily-leaning):")
    for row in walks[:3]:
        print("  " + " -> ".join(str(int(v)) for v in row))

    # --- FORA hybrid SSPPR ----------------------------------------------------
    print("\nFORA hybrid SSPPR (coarse push eps=1e-3 + Monte-Carlo):")
    est = fora_ssppr(graph, source, push_epsilon=1e-3,
                     walks_per_unit=20_000, seed=7)
    exact = power_iteration_ssppr(graph, source, alpha=0.462)
    print(f"  mass: {est.sum():.6f}  "
          f"L1 vs exact: {np.abs(est - exact).sum():.4f}  "
          f"top-50 precision: {topk_precision(est, exact, 50):.2f}")


if __name__ == "__main__":
    main()
