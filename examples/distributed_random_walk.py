"""Distributed random walks — the Figure 4 (right) workload.

Shows the storage layer's second primitive, ``sample_one_neighbor``:
walkers hop across shards, each step grouped into one batched RPC per
destination shard; the walk summary records global node IDs.

Also demonstrates dropping below the engine facade: building the cluster
by hand with the RPC layer (``SimCluster``-free), exactly like the paper's
code snippet — useful as a template for implementing *other* distributed
graph algorithms on this engine.

Run:  python examples/distributed_random_walk.py
"""

import numpy as np

from repro import EngineConfig, GraphEngine, load_dataset
from repro.engine.cluster import SimCluster
from repro.partition import MetisLitePartitioner
from repro.storage import DistGraphStorage, build_shards
from repro.walk import distributed_random_walk


def facade_walks() -> None:
    print("=== via the GraphEngine facade ===")
    graph = load_dataset("twitter", scale=0.03)
    engine = GraphEngine(graph, EngineConfig(n_machines=3))
    run = engine.run_random_walks(n_roots=12, walk_length=8)
    print(f"{len(run.roots)} walks of length 8: "
          f"{run.throughput:.0f} walks/s (virtual)")
    for row in run.walks[:4]:
        print("  walk:", " -> ".join(str(int(v)) for v in row))


def handmade_cluster_walks() -> None:
    print("\n=== hand-built cluster (Figure 4 style) ===")
    graph = load_dataset("twitter", scale=0.03)
    n_machines = 2
    sharded = build_shards(
        graph, MetisLitePartitioner(seed=0).partition(graph, n_machines)
    )
    cluster = SimCluster(sharded, EngineConfig(n_machines=n_machines))

    # one walker driver per machine, walking its own core nodes
    for m in range(n_machines):
        name = f"compute:{m}.0"
        g = DistGraphStorage(cluster.rrefs, m, name)
        roots = sharded.shards[m].core_global[:6]

        def driver(g=g, roots=roots, name=name):
            proc = cluster.scheduler.processes[name]
            summary = yield from distributed_random_walk(
                g, proc, roots, sharded, walk_length=5
            )
            return summary

        cluster.spawn_compute(m, 0, driver())

    makespan = cluster.run()
    print(f"makespan: {makespan * 1e3:.2f} ms virtual; "
          f"{cluster.ctx.remote_requests} cross-machine RPCs")
    for m in range(n_machines):
        summary = cluster.scheduler.result_of(f"compute:{m}.0")
        hops_crossed = 0
        for row in summary:
            shards = sharded.owner_shard[row]
            hops_crossed += int(np.count_nonzero(np.diff(shards) != 0))
        print(f"machine {m}: {summary.shape[0]} walks, "
              f"{hops_crossed} shard-crossing hops")


if __name__ == "__main__":
    facade_walks()
    handmade_cluster_walks()
